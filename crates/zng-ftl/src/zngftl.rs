//! The ZnG zero-overhead FTL (paper §IV-A).
//!
//! Address translation is split so that no SSD engine is needed:
//!
//! * **DBMT** (data block mapping table) — virtual block → physical data
//!   block, block-granular and read-only. It lives in the GPU MMU and is
//!   cached by the TLB, so read translation costs nothing extra.
//! * **LBMT** (log block mapping table) — groups of
//!   [`ZngFtl::group_size`] data blocks share one over-provisioned
//!   physical *log block*; the LBMT lives in GPU shared memory.
//! * **LPMT** (log page mapping table) — each log block's page remapping
//!   lives *inside the plane's programmable row decoder*
//!   ([`zng_flash::RowDecoder`]), searched as a CAM on access.
//!
//! Writes append to the group's log block (directly, or via the flash
//! registers in wropt mode). When a log block fills, a **GPU helper
//! thread** merges the group: every data block with logged pages is
//! rewritten to a fresh block (wear-levelled), the old data block and the
//! log block are erased, and the DBMT/LBMT are updated. The report tells
//! the platform which pages to flush from L2 and how long the victim
//! app's requests stay blocked (paper Fig. 17).

use std::collections::{BTreeMap, BTreeSet};

use fxhash::FxHashMap;
use zng_flash::{BlockKind, FlashDevice, RowDecoder, CAM_SEARCH_CYCLES};
use zng_types::{BlockAddr, Cycle, Error, FlashAddr, Result};

use crate::densemap::DenseMap;

use crate::health::{HealthCounters, HealthPolicy, HealthState};
use crate::integrity::IntegrityCounters;
use crate::rain::{Claim, RainConfig, RainState};
use crate::recovery::{self, RecoveryReport};
use crate::refresh::{EnduranceCounters, EnduranceState, RefreshPolicy, RefreshReason};
use crate::MAX_WRITE_REDRIVES;

/// How writes reach the flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// ZnG-base: each 128 B write read-modify-programs a log page.
    Direct,
    /// ZnG-wropt: writes merge in the flash registers; only evictions
    /// program log pages.
    Buffered,
}

/// The outcome of a garbage collection performed by the GPU helper thread.
#[derive(Debug, Clone)]
pub struct GcReport {
    /// The data-block group that was merged.
    pub group: u64,
    /// When the GC started.
    pub started: Cycle,
    /// When the merge finished on the media.
    pub done: Cycle,
    /// How long the victim app is actually blocked. Equal to `done`
    /// without GC pacing; with pacing it is capped at the blocking
    /// deadline (`started + stall_budget`), and a capped merge counts as
    /// a deadline miss.
    pub blocking_done: Cycle,
    /// Pages migrated (reads+programs on the GC thread).
    pub migrated_pages: u64,
    /// Blocks erased (data blocks + the log block).
    pub erased_blocks: u64,
    /// Virtual page numbers whose L2 lines must be flushed.
    pub flushed_vpns: Vec<u64>,
}

/// A completed write and any GC it triggered.
#[derive(Debug, Clone)]
pub struct WriteResult {
    /// When the write retires from the warp's perspective.
    pub done: Cycle,
    /// A garbage collection that ran to make room, if any.
    pub gc: Option<GcReport>,
    /// The flash registers' thrashing-checker verdict (buffered mode
    /// only) — the trigger for ZnG's pinned-L2 write redirection.
    pub thrashing: bool,
}

#[derive(Debug, Clone)]
struct LogBlock {
    addr: BlockAddr,
    decoder: RowDecoder,
}

/// What one evacuation step migrates off a quarantined die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvacVictim {
    /// A group merge (the victim is a log block, or a data block with
    /// newer logged copies).
    Group(u64),
    /// A standalone data-block rewrite.
    Data(u64),
}

/// The zero-overhead FTL state machine.
#[derive(Debug, Clone)]
pub struct ZngFtl {
    group_size: u64,
    pages_per_block: u64,
    mode: WriteMode,
    /// DBMT: vbn -> physical data block. Direct-indexed ([`DenseMap`]):
    /// vbns are dense within an app's segment, every hot-path resolve is
    /// an array index, and iteration is ascending-vbn by construction.
    dbmt: DenseMap<BlockAddr>,
    /// LBMT: group -> log block (+ its row-decoder LPMT). Same
    /// direct-indexed layout as the DBMT.
    lbmt: DenseMap<LogBlock>,
    allocator: crate::allocator::BlockAllocator,
    gcs: u64,
    migrated: u64,
    /// (start, end) of each GC, for the Fig. 17 time series.
    gc_events: Vec<(Cycle, Cycle)>,
    /// Blocks permanently retired after failed programs/erases.
    blocks_retired: u64,
    /// Writes re-driven into a new log slot after a program failure.
    write_redrives: u64,
    /// GC pacing policy; `None` (the default) blocks the victim for the
    /// whole merge, preserving baseline behaviour bit-for-bit.
    pacing: Option<crate::pacing::GcPacing>,
    /// Merges whose media completion overran the blocking deadline.
    gc_deadline_misses: u64,
    /// Merges that ran with pacing enabled.
    paced_gcs: u64,
    /// RAIN redundancy & self-healing state; `None` (the default)
    /// preserves baseline behaviour bit-for-bit.
    rain: Option<RainState>,
    /// End-to-end payload verification on host-facing reads; off by
    /// default (bit-for-bit baseline: no checksum checks, no extra work).
    integrity: bool,
    icounters: IntegrityCounters,
    /// Endurance management (refresh scheduler, static wear leveler,
    /// graceful end-of-life degradation); `None` (the default) preserves
    /// baseline behaviour bit-for-bit, including the hard
    /// [`Error::DeviceWornOut`] cliff.
    endurance: Option<EnduranceState>,
    /// Mapping checkpoints + delta journal for bounded-time recovery;
    /// `None` (the default) preserves baseline behaviour bit-for-bit.
    checkpoint: Option<crate::checkpoint::CheckpointState>,
    /// Stale checkpoint blocks a recovery deferred; the next checkpoint
    /// write erases them off the restore critical path.
    stale_ckpt: Vec<u64>,
    /// Predictive health monitor (suspect-die quarantine + pre-emptive
    /// evacuation); `None` (the default) preserves baseline behaviour
    /// bit-for-bit.
    health: Option<HealthState>,
}

impl ZngFtl {
    /// Creates the FTL for `device`, with `group_size` data blocks per
    /// log block and the given write mode.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn new(device: &FlashDevice, group_size: u64, mode: WriteMode) -> ZngFtl {
        ZngFtl::with_wear_policy(
            device,
            group_size,
            mode,
            crate::allocator::WearPolicy::LeastErased,
        )
    }

    /// Creates the FTL with an explicit wear-levelling policy (paper §VI:
    /// the helper thread can run different wear-levelling algorithms).
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn with_wear_policy(
        device: &FlashDevice,
        group_size: u64,
        mode: WriteMode,
        policy: crate::allocator::WearPolicy,
    ) -> ZngFtl {
        assert!(group_size > 0, "log groups need at least one data block");
        let g = device.geometry();
        ZngFtl {
            group_size,
            pages_per_block: g.pages_per_block as u64,
            mode,
            dbmt: DenseMap::new(),
            lbmt: DenseMap::new(),
            allocator: crate::allocator::BlockAllocator::with_policy(
                g.total_blocks() as u64,
                policy,
            ),
            gcs: 0,
            migrated: 0,
            gc_events: Vec::new(),
            blocks_retired: 0,
            write_redrives: 0,
            pacing: None,
            gc_deadline_misses: 0,
            paced_gcs: 0,
            rain: None,
            integrity: false,
            icounters: IntegrityCounters::default(),
            endurance: None,
            checkpoint: None,
            stale_ckpt: Vec::new(),
            health: None,
        }
    }

    /// Installs (or clears) the predictive health policy: per-die scoring,
    /// suspect quarantine, pre-emptive evacuation and rehabilitation
    /// activate together. `None` keeps the baseline bit-for-bit.
    pub fn set_health(&mut self, policy: Option<HealthPolicy>) {
        self.health = policy.map(HealthState::new);
    }

    /// Whether predictive health monitoring is enabled.
    pub fn health_enabled(&self) -> bool {
        self.health.is_some()
    }

    /// Event counters of the health subsystem, when enabled.
    pub fn health_counters(&self) -> Option<HealthCounters> {
        self.health.as_ref().map(|h| h.counters)
    }

    /// The currently quarantined dies, sorted; empty when health is off.
    pub fn quarantined_dies(&self) -> Vec<(u16, u16)> {
        self.health
            .as_ref()
            .map(|h| h.quarantined())
            .unwrap_or_default()
    }

    /// Installs (or clears) the endurance policy: the refresh scheduler,
    /// the static wear leveler and graceful end-of-life capacity
    /// degradation activate together. `None` keeps the baseline
    /// bit-for-bit, including the hard [`Error::DeviceWornOut`] cliff.
    pub fn set_endurance(&mut self, policy: Option<RefreshPolicy>) {
        self.endurance = policy.map(EnduranceState::new);
    }

    /// Whether endurance management is enabled.
    pub fn endurance_enabled(&self) -> bool {
        self.endurance.is_some()
    }

    /// Event counters of the endurance subsystem, when enabled.
    pub fn endurance_counters(&self) -> Option<EnduranceCounters> {
        self.endurance.as_ref().map(|s| s.counters)
    }

    /// Installs (or clears) RAIN redundancy: superblocks reserve one
    /// rotating parity member, uncorrectable reads reconstruct from
    /// surviving stripe members, and the patrol scrub / die-failure
    /// machinery activates. `None` keeps the baseline bit-for-bit.
    pub fn set_redundancy(&mut self, device: &FlashDevice, config: Option<RainConfig>) {
        self.rain = config.map(|c| RainState::new(device, c));
    }

    /// The redundancy state, if installed.
    pub fn redundancy(&self) -> Option<&RainState> {
        self.rain.as_ref()
    }

    /// Enables (or disables) end-to-end payload verification: every
    /// host-facing read checks the page's OOB checksum and escalates on a
    /// mismatch (re-read → stripe reconstruction → fail loudly). Off by
    /// default, preserving baseline behaviour bit-for-bit.
    pub fn set_integrity(&mut self, enabled: bool) {
        self.integrity = enabled;
    }

    /// Whether end-to-end payload verification is enabled.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity
    }

    /// Event counters of the integrity layer.
    pub fn integrity_counters(&self) -> IntegrityCounters {
        self.icounters
    }

    /// Installs (or clears) the GC pacing policy. With pacing, every
    /// merge's [`GcReport::blocking_done`] is capped at the blocking
    /// deadline and overruns are counted as deadline misses.
    pub fn set_gc_pacing(&mut self, pacing: Option<crate::pacing::GcPacing>) {
        self.pacing = pacing;
    }

    /// The installed pacing policy, if any.
    pub fn gc_pacing(&self) -> Option<crate::pacing::GcPacing> {
        self.pacing
    }

    /// Installs (or clears) mapping checkpoints + the delta journal.
    /// `None` (or a disabled config) keeps the baseline bit-for-bit:
    /// no checkpoint blocks are allocated and recovery always runs the
    /// full OOB scan.
    pub fn set_checkpointing(&mut self, config: Option<crate::checkpoint::CheckpointConfig>) {
        self.checkpoint = config
            .filter(|c| c.enabled())
            .map(crate::checkpoint::CheckpointState::new);
    }

    /// Whether checkpointing is enabled.
    pub fn checkpoint_enabled(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// Event counters of the checkpoint subsystem, when enabled.
    pub fn checkpoint_counters(&self) -> Option<crate::checkpoint::CheckpointCounters> {
        self.checkpoint.as_ref().map(|ck| ck.counters())
    }

    /// Flushes pending journal records at the end of a mutating entry
    /// point, so every critical (touched-block) record is on media before
    /// the operation acknowledges. A no-op without checkpointing or with
    /// nothing flush-worthy pending.
    fn ckpt_sync(&mut self, now: Cycle, device: &mut FlashDevice) {
        let Some(mut ck) = self.checkpoint.take() else {
            return;
        };
        if ck.flush_ready() {
            let mut io = crate::checkpoint::CkptIo {
                device,
                allocator: &mut self.allocator,
                rain: self.rain.as_mut(),
                blocks_retired: &mut self.blocks_retired,
            };
            crate::checkpoint::flush_journal(&mut ck, &mut io, now);
        } else {
            ck.tick(now);
        }
        self.checkpoint = Some(ck);
    }

    /// One background checkpoint write, run by the GPU helper thread
    /// between demand requests: flush the journal tail, serialise the
    /// mapping image into checkpoint blocks, commit, and erase the
    /// superseded epoch. Media failures abort the write (the previous
    /// epoch stays in force) rather than surfacing — the checkpoint is an
    /// accelerator, never a correctness dependency. Returns when the
    /// foreground may resume, capped by the configured pacing budget.
    pub fn checkpoint_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Cycle {
        let Some(mut ck) = self.checkpoint.take() else {
            return now;
        };
        let done = {
            let mut io = crate::checkpoint::CkptIo {
                device,
                allocator: &mut self.allocator,
                rain: self.rain.as_mut(),
                blocks_retired: &mut self.blocks_retired,
            };
            crate::checkpoint::write_checkpoint(
                &mut ck,
                &mut io,
                now,
                std::mem::take(&mut self.stale_ckpt),
            )
        };
        let resumed = match ck.config().pacing {
            Some(p) => {
                let deadline = p.deadline(now);
                if done > deadline {
                    ck.bump_overrun();
                }
                done.min(deadline)
            }
            None => done,
        };
        self.checkpoint = Some(ck);
        resumed
    }

    /// Merges whose media completion overran the blocking deadline.
    pub fn gc_deadline_misses(&self) -> u64 {
        self.gc_deadline_misses
    }

    /// Merges that ran with pacing enabled.
    pub fn paced_gcs(&self) -> u64 {
        self.paced_gcs
    }

    /// Data blocks sharing one log block.
    pub fn group_size(&self) -> u64 {
        self.group_size
    }

    fn vbn_of(&self, vpn: u64) -> u64 {
        vpn / self.pages_per_block
    }

    fn group_of(&self, vpn: u64) -> u64 {
        self.vbn_of(vpn) / self.group_size
    }

    fn alloc_block(&mut self, device: &mut FlashDevice, kind: BlockKind) -> Result<BlockAddr> {
        self.alloc_block_with(device, kind, false)
    }

    /// The one allocation chokepoint. `most_worn` picks the tired end of
    /// the recycled pool instead of the coldest block — the static wear
    /// leveler's destination, so cold data parks on high-wear cells.
    fn alloc_block_with(
        &mut self,
        device: &mut FlashDevice,
        kind: BlockKind,
        most_worn: bool,
    ) -> Result<BlockAddr> {
        let idx = loop {
            let idx = if most_worn {
                self.allocator.allocate_most_worn()?
            } else {
                self.allocator.allocate()?
            };
            if let Some(h) = self.health.as_mut() {
                let addr = device.geometry().block_for_index(idx)?;
                if device.die_is_dead(addr.channel, addr.die) {
                    // Dead silicon never returns: retire, exactly like
                    // RAIN's fencing classification would.
                    self.allocator.retire(idx);
                    continue;
                }
                let key = (addr.channel.index() as u16, addr.die.index() as u16);
                if h.is_quarantined(key) {
                    // Quarantine is reversible: park the block instead of
                    // retiring it, so rehabilitation can hand it back.
                    h.park(idx, key);
                    continue;
                }
            }
            match self.rain.as_mut() {
                Some(rain) => match rain.classify(device, idx)? {
                    Claim::Keep => break idx,
                    // The superblock's reserved parity member: RAIN keeps
                    // it, the FTL allocates again. Parity programs land
                    // here later, so the fast-path rescan must cover it.
                    Claim::Parity => {
                        if let Some(ck) = self.checkpoint.as_mut() {
                            ck.note_touched(idx);
                        }
                    }
                    // A block on a dead die: permanently out of service.
                    Claim::Fenced => self.allocator.retire(idx),
                },
                None => break idx,
            }
        };
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(idx);
        }
        let addr = device.geometry().block_for_index(idx)?;
        device.block_mut(addr)?.set_kind(kind);
        Ok(addr)
    }

    /// Ensures `vbn`'s data block exists, pre-loaded with the initial
    /// dataset (zero simulated cost: data resided on flash at kernel
    /// launch). Every preloaded page gets an OOB record so the block is
    /// reconstructible after a power loss; the preload always precedes
    /// any log write of the same pages, so its stamps are outranked by
    /// every later demand write.
    fn ensure_data_block(&mut self, device: &mut FlashDevice, vbn: u64) -> Result<BlockAddr> {
        if let Some(&addr) = self.dbmt.get(vbn) {
            return Ok(addr);
        }
        let addr = self.alloc_block(device, BlockKind::Data)?;
        for offset in 0..self.pages_per_block {
            device.preload_page(addr, vbn * self.pages_per_block + offset)?;
        }
        if let Some(rain) = self.rain.as_mut() {
            // Parity of a pre-resident superblock logically pre-resided
            // too: flush it outside the timing model.
            rain.note_preload(device, addr)?;
        }
        self.dbmt.insert(vbn, addr);
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_remap(vbn);
        }
        Ok(addr)
    }

    fn ensure_log_block(&mut self, device: &mut FlashDevice, group: u64) -> Result<BlockAddr> {
        if let Some(lb) = self.lbmt.get(group) {
            return Ok(lb.addr);
        }
        let addr = self.alloc_block(device, BlockKind::Log)?;
        let decoder = RowDecoder::new(device.geometry().pages_per_block as u32);
        self.lbmt.insert(group, LogBlock { addr, decoder });
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_remap(group);
        }
        Ok(addr)
    }

    /// Resolves where `vpn` currently lives: the log block (if logged)
    /// or its data block. Returns `(address, extra CAM-search cycles)`.
    fn resolve(&mut self, device: &mut FlashDevice, vpn: u64) -> Result<(FlashAddr, Cycle)> {
        let vbn = self.vbn_of(vpn);
        let data = self.ensure_data_block(device, vbn)?;
        let group = self.group_of(vpn);
        if let Some(lb) = self.lbmt.get_mut(group) {
            if let Some(slot) = lb.decoder.lookup(vpn) {
                return Ok((FlashAddr::new(lb.addr, slot), CAM_SEARCH_CYCLES));
            }
            // Missed in the CAM: the search still happened.
            let offset = (vpn % self.pages_per_block) as u32;
            return Ok((FlashAddr::new(data, offset), CAM_SEARCH_CYCLES));
        }
        let offset = (vpn % self.pages_per_block) as u32;
        Ok((FlashAddr::new(data, offset), Cycle::ZERO))
    }

    /// Reads virtual page `vpn`, delivering `transfer_bytes`.
    ///
    /// The DBMT lookup itself is free (it rides the MMU/TLB); only a log
    /// block's CAM search adds cycles.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors. Under a bounded
    /// queue configuration a saturated channel controller rejects the
    /// read with [`Error::Backpressure`] before touching the media;
    /// register-served reads bypass admission (they never reach the
    /// channel's request queue).
    pub fn read(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vpn: u64,
        transfer_bytes: usize,
    ) -> Result<Cycle> {
        self.read_inner(now, device, vpn, transfer_bytes)
            .map_err(|e| self.degrade_worn(e))
    }

    fn read_inner(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vpn: u64,
        transfer_bytes: usize,
    ) -> Result<Cycle> {
        // Freshly written data may still sit in the *log-home* package's
        // registers (no LPMT mapping exists until eviction): serve it
        // from there.
        let group = self.group_of(vpn);
        if let Some(lb) = self.lbmt.get(group) {
            let log_ch = lb.addr.channel;
            if let Some(done) = device.read_from_register_if_held(now, log_ch, vpn, transfer_bytes)
            {
                return Ok(done);
            }
        }
        let (addr, cam) = self.resolve(device, vpn)?;
        device.try_admit(now, addr.block.channel)?;
        let done = self.read_media(now + cam, device, addr, vpn, transfer_bytes)?;
        let done = self.verify_payload(done, device, addr, vpn, transfer_bytes, true)?;
        device.note_inflight(addr.block.channel, done);
        Ok(done)
    }

    /// Verifies a served payload against its OOB checksum (integrity mode
    /// only; a no-op otherwise). A mismatch escalates: one charged
    /// re-read, then stripe reconstruction when redundancy is on — with a
    /// healing rewrite through the log path if `heal` — then
    /// [`Error::IntegrityViolation`]. Callers that immediately supersede
    /// the page anyway (the RMW write fetch) pass `heal = false`.
    fn verify_payload(
        &mut self,
        done: Cycle,
        device: &mut FlashDevice,
        addr: FlashAddr,
        vpn: u64,
        bytes: usize,
        heal: bool,
    ) -> Result<Cycle> {
        if !self.integrity || !device.page_is_corrupt(addr) {
            return Ok(done);
        }
        self.icounters.detected += 1;
        // The corruption is in the array (a consistent miscorrection), so
        // the re-read returns the same wrong payload; it is still charged
        // because the controller cannot know that without trying.
        let t = device.read(done, addr, vpn, bytes).unwrap_or(done);
        self.icounters.rereads += 1;
        if self.rain.is_none() {
            return Err(Error::IntegrityViolation {
                block: addr.block.block as u64,
                page: addr.page,
            });
        }
        let t = self
            .rain
            .as_mut()
            .expect("checked above")
            .reconstruct(t, device, addr, bytes)?;
        self.icounters.reconstructed += 1;
        if heal {
            // Re-log the reconstructed payload as a clean copy; the
            // corrupt physical page is superseded (a corrupt log slot is
            // invalidated outright, a corrupt data page is outranked by
            // the new log copy until the next merge erases it).
            let group = self.group_of(vpn);
            self.ensure_data_block(device, self.vbn_of(vpn))?;
            self.ensure_log_block(device, group)?;
            self.program_log_page(t, device, vpn, group)?;
        }
        self.icounters.quarantined += 1;
        Ok(t)
    }

    /// Extra read-retry attempts granted when `block`'s die is
    /// quarantined by the health monitor; zero otherwise (and always
    /// zero with health off, preserving the baseline bit-for-bit).
    fn quarantine_extra(&self, block: BlockAddr) -> u32 {
        match self.health.as_ref() {
            Some(h)
                if h.is_quarantined((block.channel.index() as u16, block.die.index() as u16)) =>
            {
                crate::health::QUARANTINE_EXTRA_READ_ATTEMPTS
            }
            _ => 0,
        }
    }

    /// One media sense with the RAIN fallback: an uncorrectable result
    /// (the host retry ladder lives in the platform; a dead die never
    /// recovers) reconstructs from surviving stripe members when
    /// redundancy is on, and propagates untouched when it is off. A
    /// quarantined die's data gets an elevated retry budget first: every
    /// sense that succeeds is one fewer reconstruction fan-out.
    fn read_media(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        addr: FlashAddr,
        vpn: u64,
        transfer_bytes: usize,
    ) -> Result<Cycle> {
        let extra = self.quarantine_extra(addr.block);
        let mut attempt = 0;
        loop {
            match device.read(now, addr, vpn, transfer_bytes) {
                Err(Error::UncorrectableRead { .. }) if attempt < extra => attempt += 1,
                Err(Error::UncorrectableRead { .. }) if self.rain.is_some() => {
                    return self.rain.as_mut().expect("checked above").reconstruct(
                        now,
                        device,
                        addr,
                        transfer_bytes,
                    )
                }
                r => return r,
            }
        }
    }

    /// Writes one 128 B sector of `vpn`.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors. Under a bounded
    /// queue configuration a saturated log-home channel rejects the write
    /// with [`Error::Backpressure`] before any state changes, so a
    /// rejected write can simply be retried later. GC traffic triggered
    /// by an admitted write bypasses admission (reclamation must always
    /// make progress).
    pub fn write(&mut self, now: Cycle, device: &mut FlashDevice, vpn: u64) -> Result<WriteResult> {
        let r = self
            .write_inner(now, device, vpn)
            .map_err(|e| self.degrade_worn(e));
        let t = r.as_ref().map(|wr| wr.done).unwrap_or(now);
        self.ckpt_sync(t, device);
        r
    }

    fn write_inner(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vpn: u64,
    ) -> Result<WriteResult> {
        let vbn = self.vbn_of(vpn);
        self.ensure_data_block(device, vbn)?;
        let group = self.group_of(vpn);
        let log_addr = self.ensure_log_block(device, group)?;
        device.try_admit(now, log_addr.channel)?;
        let r = match self.mode {
            WriteMode::Direct => self.write_direct(now, device, vpn, group),
            WriteMode::Buffered => self.write_buffered(now, device, vpn, group, log_addr),
        }?;
        device.note_inflight(log_addr.channel, r.done);
        Ok(r)
    }

    /// ZnG-base path: fetch the current page, merge, program a log page.
    fn write_direct(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vpn: u64,
        group: u64,
    ) -> Result<WriteResult> {
        debug_assert_eq!(group, self.group_of(vpn));
        let mut gc = None;
        if self
            .lbmt
            .get(group)
            .expect("log block ensured")
            .decoder
            .is_full()
        {
            let report = self.gc_group(now, device, group)?;
            gc = Some(report);
            // Retry immediately after the merge freed the group's log
            // space. Resources are reserved at `now` (not at the merge's
            // far-future completion) so concurrent traffic is not falsely
            // queued; the *caller* blocks this app until `gc.done`.
            self.ensure_log_block(device, group)?;
            let r = self.write_direct(now, device, vpn, group)?;
            return Ok(WriteResult {
                done: r.done,
                gc,
                thrashing: false,
            });
        }
        // Read-modify-write: fetch the page being partially overwritten,
        // merge in a plane register, and program the log page. The warp
        // retires once the merged data is staged in the register; the
        // 100 µs program completes in the background (the plane stays
        // busy, which is the real throughput penalty).
        let (src, cam) = self.resolve(device, vpn)?;
        let page_bytes = device.geometry().page_bytes;
        let fetched = self.read_media(now + cam, device, src, vpn, page_bytes)?;
        // The RMW fetch is a consumer too: merging a corrupt payload
        // would launder the corruption into the new log page. No healing
        // rewrite — the merged program below supersedes the page anyway.
        let fetched = self.verify_payload(fetched, device, src, vpn, page_bytes, false)?;
        self.program_log_page(fetched, device, vpn, group)?;
        Ok(WriteResult {
            done: fetched + Cycle(600),
            gc,
            thrashing: false,
        })
    }

    /// ZnG-wropt path: merge in flash registers; program only on eviction.
    fn write_buffered(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vpn: u64,
        group: u64,
        log_addr: BlockAddr,
    ) -> Result<WriteResult> {
        debug_assert_eq!(group, self.group_of(vpn));
        let buffered = device.buffered_write(now, vpn, log_addr);
        let mut gc = None;
        if let Some(pending) = buffered.eviction {
            // The victim may belong to a different group.
            let victim_group = self.group_of(pending.key);
            self.ensure_log_block(device, victim_group)?;
            let t = pending.ready_at.max(now);
            if self
                .lbmt
                .get(victim_group)
                .expect("log block ensured")
                .decoder
                .is_full()
            {
                let report = self.gc_group(t, device, victim_group)?;
                gc = Some(report);
                self.ensure_log_block(device, victim_group)?;
            }
            // Reserve at the bounded `t`, never at the merge's completion
            // (see write_direct); the caller blocks the victim app.
            self.program_log_page(t, device, pending.key, victim_group)?;
        }
        Ok(WriteResult {
            done: buffered.done,
            gc,
            thrashing: buffered.thrashing,
        })
    }

    /// Appends `vpn` to `group`'s log block: records the LPMT mapping in
    /// the row decoder, invalidates a superseded log page, and programs
    /// the array.
    ///
    /// A program that fails verification is re-driven into the next log
    /// slot (the burned slot's mapping is retracted so the previous
    /// acknowledged version stays reachable); re-drives that fill the log
    /// block trigger an inline merge and continue on the fresh log block.
    fn program_log_page(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vpn: u64,
        group: u64,
    ) -> Result<Cycle> {
        for _ in 0..MAX_WRITE_REDRIVES {
            let lb = self.lbmt.get_mut(group).expect("log block ensured");
            if lb.decoder.is_full() {
                // Rare corner: re-drives consumed the last log slots
                // mid-write. Merge the group inline and continue on the
                // fresh log block. The merge is recorded in `gc_events`;
                // its blocking report cannot reach this write's caller.
                self.gc_group(now, device, group)?;
                self.ensure_log_block(device, group)?;
                continue;
            }
            let old = lb.decoder.lookup(vpn);
            let slot = lb.decoder.record(vpn)?;
            let addr = lb.addr;
            let report = device.program_evicted(now, addr, vpn)?;
            debug_assert_eq!(report.page, slot, "decoder and block program in lock-step");
            if !report.failed {
                // Supersede the previous version only once the new one
                // is verified, so a failure never strands acked data.
                if let Some(stale) = old {
                    device.invalidate(FlashAddr::new(addr, stale));
                }
                if let Some(rain) = self.rain.as_mut() {
                    rain.note_program(report.done, device, addr)?;
                }
                if let Some(ck) = self.checkpoint.as_mut() {
                    ck.note_remap(vpn);
                }
                return Ok(report.done);
            }
            // The burned slot holds garbage (the plane already
            // invalidated it); point the mapping back at the previous
            // version and try the next slot.
            self.write_redrives += 1;
            self.lbmt
                .get_mut(group)
                .expect("log block ensured")
                .decoder
                .retract(vpn, old);
        }
        Err(Error::FlashProtocol(format!(
            "write of vpn {vpn} still failing after {MAX_WRITE_REDRIVES} re-drives"
        )))
    }

    /// Merges `group`: rewrites every data block with logged pages to a
    /// fresh block, erases the stale blocks and the log block, updates
    /// DBMT/LBMT. Runs on the GPU helper thread; per-block merges proceed
    /// in parallel across planes, so `done` is the slowest block chain.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors.
    pub fn gc_group(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        group: u64,
    ) -> Result<GcReport> {
        let lb = match self.lbmt.remove(group) {
            Some(lb) => lb,
            None => {
                return Ok(GcReport {
                    group,
                    started: now,
                    done: now,
                    blocking_done: now,
                    migrated_pages: 0,
                    erased_blocks: 0,
                    flushed_vpns: Vec::new(),
                })
            }
        };
        self.gcs += 1;
        let page_bytes = device.geometry().page_bytes;

        // Which data blocks of the group actually have logged pages?
        // Keyed in a BTreeMap so the merge walks vbns in ascending order
        // without a separate collect-and-sort.
        let mut by_vbn: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
        for (vpn, slot) in lb.decoder.mappings() {
            by_vbn
                .entry(self.vbn_of(vpn))
                .or_default()
                .push((vpn, slot));
        }
        let mut flushed = Vec::new();
        let mut migrated = 0u64;
        let mut erased = 0u64;
        let mut done = now;

        let vbns: Vec<u64> = by_vbn.keys().copied().collect();
        for vbn in vbns {
            let logged = &by_vbn[&vbn];
            // Every logged vpn passed through `write`, which ensures its
            // data block first; dbmt entries are never removed. A miss
            // here is a simulator bug, not a caller-reachable state.
            let old_data = self
                .dbmt
                .get(vbn)
                .copied()
                .expect("logged vpn's data block was ensured at write time");
            let logged_map: FxHashMap<u64, u32> = logged.iter().copied().collect();
            // Merge all pages of the block, newest version of each. The
            // helper thread double-buffers: the next page's read overlaps
            // the previous page's program (reads and programs occupy
            // different planes), so the chain advances at read speed and
            // the destination plane's program queue absorbs the rest.
            //
            // A program failure mid-merge abandons the destination block
            // (data blocks must stay offset-ordered, so a partial block
            // cannot be patched), retires it, and restarts the merge on a
            // new fresh block — the sources are untouched (reads only).
            // Each restart shrinks the free pool, so repeated failures
            // terminate in `Error::DeviceWornOut` from the allocator.
            let (fresh, read_t, last_prog) = loop {
                let fresh = self.alloc_block(device, BlockKind::Data)?;
                let mut read_t = now;
                let mut last_prog = now;
                let mut burned = false;
                for offset in 0..self.pages_per_block {
                    let vpn = vbn * self.pages_per_block + offset;
                    // Stale register copies are folded into the merge.
                    device.discard_register(old_data.channel, vpn);
                    let src = match logged_map.get(&vpn) {
                        Some(&slot) => FlashAddr::new(lb.addr, slot),
                        None => FlashAddr::new(old_data, offset as u32),
                    };
                    read_t = self.gc_read(read_t, device, src, vpn, page_bytes)?;
                    let report = device.program_migrate(read_t, fresh, vpn)?;
                    if report.failed {
                        burned = true;
                        break;
                    }
                    if device.page_is_corrupt(src) {
                        // GC must not launder corruption: the moved
                        // payload still fails its checksum at the new
                        // location, so the flag moves with it.
                        device.mark_page_corrupt(FlashAddr::new(fresh, report.page))?;
                    }
                    last_prog = last_prog.max(report.done);
                    migrated += 1;
                }
                if !burned {
                    break (fresh, read_t, last_prog);
                }
                self.retire_block(device, fresh)?;
            };
            if let Some(rain) = self.rain.as_mut() {
                rain.note_program(last_prog, device, fresh)?;
            }
            for offset in 0..self.pages_per_block {
                flushed.push(vbn * self.pages_per_block + offset);
            }
            done = done.max(last_prog);
            // Retire the old data block.
            self.invalidate_whole_block(device, old_data)?;
            done = done.max(self.erase_or_fence(read_t, device, old_data, &mut erased)?);
            self.dbmt.insert(vbn, fresh);
            if let Some(ck) = self.checkpoint.as_mut() {
                ck.note_remap(vbn);
            }
        }

        // Retire the log block itself.
        self.invalidate_whole_block(device, lb.addr)?;
        done = done.max(self.erase_or_fence(done, device, lb.addr, &mut erased)?);

        self.migrated += migrated;
        self.gc_events.push((now, done));
        let blocking_done = match self.pacing {
            Some(p) => {
                self.paced_gcs += 1;
                let deadline = p.deadline(now);
                if done > deadline {
                    self.gc_deadline_misses += 1;
                }
                done.min(deadline)
            }
            None => done,
        };
        self.ckpt_sync(done, device);
        Ok(GcReport {
            group,
            started: now,
            done,
            blocking_done,
            migrated_pages: migrated,
            erased_blocks: erased,
            flushed_vpns: flushed,
        })
    }

    /// A GC migration read with a bounded retry budget: uncorrectable
    /// senses are transient, so the helper thread re-reads a few times
    /// before giving up on the whole merge. With redundancy on, a read
    /// that exhausts the ladder reconstructs from its stripe instead.
    fn gc_read(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        src: FlashAddr,
        vpn: u64,
        bytes: usize,
    ) -> Result<Cycle> {
        let extra = self.quarantine_extra(src.block);
        crate::engine::retried_read(device, now, src, vpn, bytes, self.rain.as_mut(), extra)
    }

    /// Erases a reclaimed block, unless its die has died since: a block on
    /// dead silicon cannot be erased, so it is fenced out of service
    /// instead (its content, if still referenced anywhere, reconstructs
    /// from the stripe). Returns when the erase completes, bumping
    /// `erased` only for real erases.
    fn erase_or_fence(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        addr: BlockAddr,
        erased: &mut u64,
    ) -> Result<Cycle> {
        if device.die_is_dead(addr.channel, addr.die) {
            self.fence_block(device, addr);
            return Ok(now);
        }
        let erase = device.erase(now, addr)?;
        self.release_block(device, addr);
        *erased += 1;
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(device.geometry().index_for_block(addr));
        }
        Ok(erase.done)
    }

    /// Permanently removes a dead-die block from service (no erase is
    /// possible on dead silicon).
    fn fence_block(&mut self, device: &FlashDevice, addr: BlockAddr) {
        let idx = device.geometry().index_for_block(addr);
        self.allocator.retire(idx);
        if let Some(rain) = self.rain.as_mut() {
            rain.fenced_blocks += 1;
        }
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(idx);
        }
    }

    fn invalidate_whole_block(&mut self, device: &mut FlashDevice, addr: BlockAddr) -> Result<()> {
        let block = device.block_mut(addr)?;
        let live: Vec<u32> = block.valid_page_indices().collect();
        for p in live {
            block.invalidate(p);
        }
        Ok(())
    }

    /// Returns an erased (or failed) block to the allocator: failed
    /// blocks are retired for good, healthy ones are recycled with their
    /// wear count.
    fn release_block(&mut self, device: &FlashDevice, addr: BlockAddr) {
        let idx = device.geometry().index_for_block(addr);
        match device.block(addr) {
            Some(b) if b.is_failed() => {
                self.allocator.retire(idx);
                self.blocks_retired += 1;
            }
            b => {
                let wear = b.map(|blk| blk.erase_count()).unwrap_or(0);
                self.allocator.release(idx, wear);
            }
        }
    }

    /// Permanently removes a half-written block from service (no erase:
    /// a block that failed program verification is not trusted again).
    fn retire_block(&mut self, device: &mut FlashDevice, addr: BlockAddr) -> Result<()> {
        self.invalidate_whole_block(device, addr)?;
        let idx = device.geometry().index_for_block(addr);
        self.allocator.retire(idx);
        self.blocks_retired += 1;
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_touched(idx);
        }
        Ok(())
    }

    /// Rebuilds every volatile mapping structure after a power loss.
    ///
    /// Call after [`FlashDevice::power_loss`]: the DBMT, the LBMT and
    /// every row-decoder LPMT are reconstructed from a full-device OOB
    /// scan. Duplicate logical pages resolve by program stamp (newest
    /// intact copy wins), torn pages are discarded, dead blocks are
    /// erased back into the free pool, and the allocator is re-derived
    /// (spare pool plus per-block wear). Deterministic and idempotent:
    /// scanning the same media twice rebuilds the same mapping state.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors from the dead-block reclaim.
    pub fn recover(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<RecoveryReport> {
        // The checkpoint fast path: load the newest verified checkpoint,
        // replay the journal tail, and re-scan only the blocks touched
        // since the stamp. Any verification failure falls back to the
        // full scan below — the two paths feed the identical rebuild, so
        // the fast path can only save time, never change the outcome.
        let planned = self
            .checkpoint
            .as_ref()
            .and_then(|ck| ck.plan_fast_scan(device));
        let fast_path = planned.is_some();
        let fallback = self.checkpoint.is_some() && !fast_path;
        let (scan, journal_replayed, blocks_rescanned, cycles_saved) = match planned {
            Some(f) => {
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    f.scan.blocks,
                    recovery::scan_device(device).blocks,
                    "fast-path image must equal a full scan of the same media"
                );
                (
                    f.scan,
                    f.journal_replayed,
                    f.blocks_rescanned,
                    f.cycles_saved,
                )
            }
            None => (recovery::scan_device(device), 0, 0, Cycle::ZERO),
        };
        let winners = recovery::resolve_winners(&scan.blocks);
        let candidates: u64 = scan.blocks.iter().map(|b| b.entries.len() as u64).sum();

        // Classify touched blocks by their OOB role tag and pick, per
        // virtual data block / per group, the copy with the newest stamp.
        // A *failed* data-tagged block is an abandoned merge destination:
        // it was retired the moment it burned and is never referenced
        // (its pages are outranked by the completed restart copy). A data
        // block is kept even with zero winning pages — a fully-logged
        // block still backs every CAM miss of its group.
        let mut data_choice: BTreeMap<u64, &recovery::ScannedBlock> = BTreeMap::new();
        let mut log_choice: BTreeMap<u64, &recovery::ScannedBlock> = BTreeMap::new();
        for blk in &scan.blocks {
            let Some(&(_, first)) = blk.entries.first() else {
                continue;
            };
            match first.tag {
                BlockKind::Data if !blk.failed => {
                    let vbn = first.lpn / self.pages_per_block;
                    match data_choice.get(&vbn) {
                        Some(prev) if prev.max_seq() >= blk.max_seq() => {}
                        _ => {
                            data_choice.insert(vbn, blk);
                        }
                    }
                }
                BlockKind::Log => {
                    let group = self.group_of(first.lpn);
                    match log_choice.get(&group) {
                        Some(prev) if prev.max_seq() >= blk.max_seq() => {}
                        _ => {
                            log_choice.insert(group, blk);
                        }
                    }
                }
                _ => {}
            }
        }

        self.dbmt.clear();
        self.lbmt.clear();
        let mut referenced: BTreeSet<u64> = BTreeSet::new();
        for (&vbn, blk) in &data_choice {
            referenced.insert(blk.idx);
            self.dbmt.insert(vbn, blk.addr);
            let b = device.block_mut(blk.addr)?;
            b.set_kind(BlockKind::Data);
            // Data pages stay valid until their block is merged away,
            // even when a log copy supersedes them (pre-crash semantics).
            for &(page, _) in &blk.entries {
                b.restore_valid(page);
            }
        }
        for (&group, blk) in &log_choice {
            referenced.insert(blk.idx);
            let b = device.block_mut(blk.addr)?;
            b.set_kind(BlockKind::Log);
            let mut live: Vec<(u64, u32)> = Vec::new();
            for &(page, m) in &blk.entries {
                let here = FlashAddr::new(blk.addr, page);
                if winners.get(&m.lpn).is_some_and(|&(_, w)| w == here) {
                    b.restore_valid(page);
                    live.push((m.lpn, page));
                }
            }
            let decoder = RowDecoder::restore(self.pages_per_block as u32, blk.programmed, live);
            self.lbmt.insert(
                group,
                LogBlock {
                    addr: blk.addr,
                    decoder,
                },
            );
        }

        let installed = winners
            .values()
            .filter(|&&(_, addr)| {
                referenced.contains(&device.geometry().index_for_block(addr.block))
            })
            .count() as u64;
        let dead = scan.blocks.iter().filter(|b| !referenced.contains(&b.idx));
        let pool = recovery::rebuild_free_pool(
            device,
            &scan.blocks,
            dead,
            referenced.len() as u64,
            now + scan.base_cycles,
            self.allocator.policy(),
            self.allocator.retired(),
        )?;
        // Only retirements discovered by this recovery count as new; the
        // rest were already charged when they happened.
        self.blocks_retired += pool.retired_delta;
        self.allocator = pool.allocator;
        self.stale_ckpt = pool.deferred;
        let done = pool.done;
        if let Some(rain) = self.rain.as_mut() {
            // Open-stripe parity lived in SRAM (lost with power) and
            // flushed parity blocks were reclaimed by the scan just now:
            // stripes restart empty.
            rain.reset_after_recovery();
        }
        if let Some(st) = self.endurance.as_mut() {
            st.reset_after_recovery();
        }
        if let Some(h) = self.health.as_mut() {
            h.reset_after_recovery();
        }
        self.icounters.quarantined += scan.corrupt;
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.reset_after_recovery();
        }
        Ok(RecoveryReport {
            pages_scanned: scan.pages_scanned,
            torn_discarded: scan.torn,
            stale_dropped: candidates - installed,
            blocks_erased: pool.blocks_erased,
            corrupt_quarantined: scan.corrupt,
            scan_cycles: done - now,
            fast_path,
            fallback,
            journal_replayed,
            blocks_rescanned,
            cycles_saved,
        })
    }

    /// Fences a freshly failed die: every group whose log block sits on
    /// the dead die is re-logged onto a spare block immediately (writes
    /// would otherwise hard-fail), while data blocks stay degraded —
    /// their reads reconstruct from the stripe — until
    /// [`ZngFtl::rebuild_dead_die`] runs. Returns when the relocations
    /// complete; a no-op without redundancy.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors, and
    /// [`Error::UncorrectableRead`] when a stripe has lost a second
    /// member.
    pub fn fence_dead_die(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.rain.is_none() {
            return Ok(now);
        }
        let page_bytes = device.geometry().page_bytes;
        // DenseMap iteration is ascending-group already: no sort needed.
        let groups: Vec<u64> = self
            .lbmt
            .iter()
            .filter(|(_, lb)| device.die_is_dead(lb.addr.channel, lb.addr.die))
            .map(|(g, _)| g)
            .collect();
        let mut t = now;
        for group in groups {
            let lb = self.lbmt.remove(group).expect("group collected above");
            let mut live: Vec<(u64, u32)> = lb.decoder.mappings();
            live.sort_unstable_by_key(|&(_, slot)| slot);
            let addr = self.alloc_block(device, BlockKind::Log)?;
            let decoder = RowDecoder::new(self.pages_per_block as u32);
            self.lbmt.insert(group, LogBlock { addr, decoder });
            if let Some(ck) = self.checkpoint.as_mut() {
                ck.note_remap(group);
            }
            let mut pages = 0u64;
            for (vpn, slot) in live {
                let src = FlashAddr::new(lb.addr, slot);
                let r = self
                    .rain
                    .as_mut()
                    .expect("fencing requires redundancy")
                    .reconstruct(t, device, src, page_bytes)?;
                t = self.program_log_page(r, device, vpn, group)?;
                pages += 1;
            }
            self.invalidate_whole_block(device, lb.addr)?;
            self.fence_block(device, lb.addr);
            if let Some(rain) = self.rain.as_mut() {
                rain.rebuild_pages += pages;
            }
        }
        self.ckpt_sync(t, device);
        Ok(t)
    }

    /// Re-creates every data block lost to a dead die onto spare blocks:
    /// each page is reconstructed from its surviving stripe members and
    /// programmed to a fresh block (chained on the GPU helper thread),
    /// after which reads stop paying the reconstruction fan-out. Returns
    /// the completion time and the pages rebuilt; a no-op without
    /// redundancy.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors, and
    /// [`Error::UncorrectableRead`] when a stripe has lost a second
    /// member.
    pub fn rebuild_dead_die(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
    ) -> Result<(Cycle, u64)> {
        if self.rain.is_none() {
            return Ok((now, 0));
        }
        let page_bytes = device.geometry().page_bytes;
        // DenseMap iteration is ascending-vbn already: no sort needed.
        let lost: Vec<(u64, BlockAddr)> = self
            .dbmt
            .iter()
            .filter(|(_, a)| device.die_is_dead(a.channel, a.die))
            .map(|(v, &a)| (v, a))
            .collect();
        let mut t = now;
        let mut pages = 0u64;
        for (vbn, old) in lost {
            // A mid-rebuild program failure abandons the destination
            // (data blocks stay offset-ordered) and restarts on a new
            // spare, exactly like a GC merge.
            let (fresh, last_prog) = loop {
                let fresh = match self.alloc_block(device, BlockKind::Data) {
                    Ok(f) => f,
                    // Spare pool ran dry mid-rebuild: report the partial
                    // progress instead of aborting the whole rebuild.
                    // Blocks not yet rebuilt stay mapped and degraded —
                    // their reads keep reconstructing from the stripe.
                    Err(Error::DeviceWornOut { .. }) | Err(Error::OutOfSpace) => {
                        self.ckpt_sync(t, device);
                        return Ok((t, pages));
                    }
                    Err(e) => return Err(e),
                };
                let mut rt = t;
                let mut last_prog = t;
                let mut burned = false;
                for offset in 0..self.pages_per_block {
                    let vpn = vbn * self.pages_per_block + offset;
                    let src = FlashAddr::new(old, offset as u32);
                    rt = self
                        .rain
                        .as_mut()
                        .expect("rebuild requires redundancy")
                        .reconstruct(rt, device, src, page_bytes)?;
                    let report = device.program_migrate(rt, fresh, vpn)?;
                    if report.failed {
                        burned = true;
                        break;
                    }
                    last_prog = last_prog.max(report.done);
                }
                if !burned {
                    break (fresh, last_prog);
                }
                self.retire_block(device, fresh)?;
            };
            if let Some(rain) = self.rain.as_mut() {
                rain.note_program(last_prog, device, fresh)?;
                rain.rebuild_pages += self.pages_per_block;
            }
            pages += self.pages_per_block;
            t = t.max(last_prog);
            self.invalidate_whole_block(device, old)?;
            self.fence_block(device, old);
            self.dbmt.insert(vbn, fresh);
            if let Some(ck) = self.checkpoint.as_mut() {
                ck.note_remap(vbn);
            }
        }
        self.ckpt_sync(t, device);
        Ok((t, pages))
    }

    /// One patrol-scrub step, run by the GPU helper thread between demand
    /// requests: sense the next live page and rewrite it through the log
    /// path when its retry depth reached the scrub threshold (or the
    /// sense needed the stripe outright). The foreground stall is capped
    /// by the configured pacing budget; the media work always completes.
    /// A no-op without redundancy.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash-protocol errors.
    pub fn scrub_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.rain.is_none() {
            return Ok(now);
        }
        let Some((addr, vpn)) = self
            .rain
            .as_mut()
            .expect("checked above")
            .scrub_scan(device)
        else {
            return Ok(now);
        };
        let page_bytes = device.geometry().page_bytes;
        let retries_before = device.stats().read_retries();
        let unc_before = device.stats().uncorrectable_reads();
        let extra = self.quarantine_extra(addr.block);
        let mut t = crate::engine::retried_read(
            device,
            now,
            addr,
            vpn,
            page_bytes,
            self.rain.as_mut(),
            extra,
        )?;
        let depth = device.stats().read_retries() - retries_before;
        let strained = device.stats().uncorrectable_reads() > unc_before;
        // The patrol validates checksums too: a corrupt page is always
        // rewritten, fed by a clean stripe reconstruction (rewriting the
        // sensed payload would just copy the corruption along).
        let corrupt = self.integrity && device.page_is_corrupt(addr);
        let config = self.rain.as_ref().expect("checked above").config();
        self.rain.as_mut().expect("checked above").scrub_scanned += 1;
        if (depth >= config.scrub_threshold as u64 || strained || corrupt)
            && self.locate(vpn) == Some(addr)
        {
            if corrupt {
                self.icounters.detected += 1;
                t = self
                    .rain
                    .as_mut()
                    .expect("checked above")
                    .reconstruct(t, device, addr, page_bytes)?;
                self.icounters.reconstructed += 1;
                self.icounters.quarantined += 1;
            }
            let vbn = self.vbn_of(vpn);
            self.ensure_data_block(device, vbn)?;
            let group = self.group_of(vpn);
            self.ensure_log_block(device, group)?;
            t = self.program_log_page(t, device, vpn, group)?;
            self.rain.as_mut().expect("checked above").scrub_rewrites += 1;
        }
        let capped = match config.pacing {
            Some(p) if t > p.deadline(now) => {
                self.rain.as_mut().expect("checked above").scrub_overruns += 1;
                p.deadline(now)
            }
            _ => t,
        };
        self.ckpt_sync(t, device);
        Ok(capped)
    }

    /// Converts an end-of-life allocator failure into the graceful
    /// [`Error::CapacityDegraded`] step when endurance management is on;
    /// passes every other error — and the baseline's hard cliff — through
    /// untouched.
    fn degrade_worn(&mut self, e: Error) -> Error {
        let mapped = self.dbmt.len() as u64 * self.pages_per_block;
        match self.endurance.as_mut() {
            Some(st) => st.degrade(e, mapped),
            None => e,
        }
    }

    /// One endurance step, run by the GPU helper thread between demand
    /// requests: walk the refresh cursor and rewrite the first block
    /// whose disturb count or retention age crossed its threshold
    /// (verified reads → re-program → remap → erase, which resets both
    /// clocks); with no refresh candidate, run one static-levelling
    /// migration when the device wear spread exceeds the configured
    /// ratio. The foreground stall is capped by the policy's pacing
    /// budget; the media work always completes. A no-op without an
    /// endurance policy.
    ///
    /// At end of life a step that cannot allocate a destination block is
    /// skipped, not surfaced — the data is no safer anywhere else, the
    /// source mapping is untouched by construction, and capacity
    /// degradation is the write path's to report.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors.
    pub fn refresh_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        let Some(st) = self.endurance.as_mut() else {
            return Ok(now);
        };
        if let Some((addr, reason)) = st.scan_candidate(device, now) {
            let done = match self.refresh_block(now, device, addr, reason) {
                Ok(done) => done,
                Err(Error::DeviceWornOut { .. }) => now,
                Err(e) => return Err(e),
            };
            let paced = self
                .endurance
                .as_mut()
                .expect("checked above")
                .pace(now, done);
            self.ckpt_sync(done, device);
            return Ok(paced);
        }
        if self
            .endurance
            .as_ref()
            .expect("checked above")
            .wants_levelling(device)
        {
            let done = match self.level_step(now, device) {
                Ok(done) => done,
                Err(Error::DeviceWornOut { .. }) => now,
                Err(e) => return Err(e),
            };
            let paced = self
                .endurance
                .as_mut()
                .expect("checked above")
                .pace(now, done);
            self.ckpt_sync(done, device);
            return Ok(paced);
        }
        Ok(now)
    }

    /// One predictive-health step, run by the GPU helper thread between
    /// demand requests: advance the degrading-die clock, fence + rebuild
    /// any die that died since the last tick (once per death), score the
    /// per-die telemetry (flagging new suspects into quarantine and
    /// rehabilitating false positives, whose parked blocks rejoin the
    /// pool), and — when evacuation is on — migrate one victim block's
    /// worth of live data off a suspect die onto healthy spares. The
    /// migrations reuse the GC merge / data-block rewrite machinery, so
    /// they are journalled, checkpoint-aware and never launder corrupt
    /// pages. The foreground stall is capped by the policy's pacing
    /// budget; the media work always completes. A no-op without a health
    /// policy.
    ///
    /// A step that cannot allocate a destination (no healthy spares) is
    /// skipped, not surfaced: the data is no safer anywhere else and a
    /// later step retries.
    ///
    /// # Errors
    ///
    /// Propagates flash-protocol errors.
    pub fn health_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.health.is_none() {
            return Ok(now);
        }
        // A quiet device never reaches its own lazy death check: advance
        // the degrading-die clock here so the monitor sees the death.
        device.degrade_tick(now);
        self.health.as_mut().expect("checked above").counters.ticks += 1;
        let mut t = now;

        // Dies that died since the last tick: fence + rebuild, once each.
        let newly_dead: Vec<(u16, u16)> = device
            .dead_dies()
            .iter()
            .copied()
            .filter(|&key| self.health.as_mut().expect("checked above").note_dead(key))
            .collect();
        for _ in newly_dead {
            t = self.fence_dead_die(t, device)?;
            let (done, _pages) = self.rebuild_dead_die(t, device)?;
            t = done;
        }

        // Score the telemetry; rehabilitated dies get their parked
        // blocks back (with their real wear, for levelling).
        let snapshot = device.stats().die_health_sorted();
        let dead: Vec<(u16, u16)> = device.dead_dies().to_vec();
        let rehabbed = self
            .health
            .as_mut()
            .expect("checked above")
            .observe(&snapshot, &dead);
        for key in rehabbed {
            let parked = self.health.as_mut().expect("checked above").unpark(key);
            for idx in parked {
                let wear = device
                    .geometry()
                    .block_for_index(idx)
                    .ok()
                    .and_then(|a| device.block(a))
                    .map(|b| b.erase_count())
                    .unwrap_or(0);
                self.allocator.release(idx, wear);
            }
        }

        if self.health.as_ref().expect("checked above").policy.evacuate {
            match self.next_evacuation_victim(device) {
                Some(EvacVictim::Group(group)) => match self.gc_group(t, device, group) {
                    Ok(report) => {
                        self.health
                            .as_mut()
                            .expect("checked above")
                            .note_evacuated(report.migrated_pages);
                        t = report.done;
                    }
                    Err(Error::DeviceWornOut { .. }) | Err(Error::OutOfSpace) => {}
                    Err(e) => return Err(e),
                },
                Some(EvacVictim::Data(vbn)) => {
                    match self.migrate_data_block(t, device, vbn, false) {
                        Ok((done, pages)) => {
                            self.health
                                .as_mut()
                                .expect("checked above")
                                .note_evacuated(pages);
                            t = done;
                        }
                        Err(Error::DeviceWornOut { .. }) | Err(Error::OutOfSpace) => {}
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    // Nothing live remains on any quarantined die: its
                    // eventual death can no longer cost a single read.
                    let h = self.health.as_mut().expect("checked above");
                    for key in h.quarantined() {
                        h.mark_evacuated(key);
                    }
                }
            }
        }
        let paced = self.health.as_mut().expect("checked above").pace(now, t);
        self.ckpt_sync(t, device);
        Ok(paced)
    }

    /// The next victim holding live data on a quarantined die, if any.
    /// Log blocks first (they still absorb new log programs until
    /// merged away); then data blocks, through the group merge when a
    /// newer log copy exists (standalone rewrites must not outrank it
    /// after a crash), standalone otherwise.
    fn next_evacuation_victim(&self, device: &FlashDevice) -> Option<EvacVictim> {
        let h = self.health.as_ref()?;
        let on_suspect = |a: &BlockAddr| {
            h.is_quarantined((a.channel.index() as u16, a.die.index() as u16))
                && !device.die_is_dead(a.channel, a.die)
        };
        // DenseMap iteration is ascending by construction, so the first
        // match is already the lowest-numbered victim.
        let group = self
            .lbmt
            .iter()
            .find(|(_, lb)| on_suspect(&lb.addr))
            .map(|(g, _)| g);
        if let Some(g) = group {
            return Some(EvacVictim::Group(g));
        }
        let vbn = self
            .dbmt
            .iter()
            .find(|(_, a)| on_suspect(a))
            .map(|(v, _)| v)?;
        if self.group_has_logged_pages(vbn) {
            Some(EvacVictim::Group(self.group_of_vbn(vbn)))
        } else {
            Some(EvacVictim::Data(vbn))
        }
    }

    /// Rewrites one aged block to fresh cells. A log block — or a data
    /// block with logged sibling pages — goes through a full group merge
    /// (newest version of every page wins, exactly the GC path); a data
    /// block with no log copies migrates standalone. Either way the old
    /// block is erased, resetting its disturb and retention clocks.
    fn refresh_block(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        addr: BlockAddr,
        reason: RefreshReason,
    ) -> Result<Cycle> {
        // A log block: merge its group (the merge folds every logged page
        // into fresh data blocks and erases the log block).
        let log_group = self
            .lbmt
            .iter()
            .find(|(_, lb)| lb.addr == addr)
            .map(|(g, _)| g);
        if let Some(group) = log_group {
            let report = self.gc_group(now, device, group)?;
            if let Some(st) = self.endurance.as_mut() {
                st.note_refresh(reason, report.migrated_pages);
            }
            return Ok(report.done);
        }
        let Some((vbn, _)) = self.dbmt.iter().find(|(_, &a)| a == addr) else {
            // Neither mapped nor logged (e.g. a block drained between the
            // scan and now): nothing live to preserve.
            return Ok(now);
        };
        // A standalone data-block rewrite stamps fresh OOB records; if a
        // *newer* log copy of any of its pages existed, those stamps
        // would outrank it after a crash and resurrect stale data. Such
        // blocks must refresh through the group merge instead.
        if self.group_has_logged_pages(vbn) {
            let group = self.group_of_vbn(vbn);
            let report = self.gc_group(now, device, group)?;
            if let Some(st) = self.endurance.as_mut() {
                st.note_refresh(reason, report.migrated_pages);
            }
            return Ok(report.done);
        }
        let (done, pages) = self.migrate_data_block(now, device, vbn, false)?;
        if let Some(st) = self.endurance.as_mut() {
            st.note_refresh(reason, pages);
        }
        Ok(done)
    }

    fn group_of_vbn(&self, vbn: u64) -> u64 {
        vbn / self.group_size
    }

    /// Whether `vbn`'s group log block holds a mapping for any of `vbn`'s
    /// pages (a newer copy that outranks the data block's).
    fn group_has_logged_pages(&self, vbn: u64) -> bool {
        self.lbmt.get(self.group_of_vbn(vbn)).is_some_and(|lb| {
            lb.decoder
                .mappings()
                .iter()
                .any(|&(vpn, _)| self.vbn_of(vpn) == vbn)
        })
    }

    /// One static-levelling migration: the coldest mapped data block
    /// (lowest erase count, no logged sibling pages) is rewritten into
    /// the most-worn spare block, and its freed low-wear cells rejoin the
    /// allocation pool where the wear-levelled allocator hands them to
    /// hot traffic. A no-op when the recycled pool is empty (a fresh
    /// block has zero wear — migrating cold data onto it would widen the
    /// spread).
    ///
    /// When every mapped block's group still holds logged copies — the
    /// steady state under the log-structured write path, since a merge
    /// only runs on a write and the triggering write re-logs a page —
    /// a standalone migration would let the rewritten OOB stamps outrank
    /// those newer copies after a crash. Instead the coldest such group
    /// is merged, folding its logged pages away so a later step can
    /// migrate it.
    fn level_step(&mut self, now: Cycle, device: &mut FlashDevice) -> Result<Cycle> {
        if self.allocator.recycled_available() == 0 {
            return Ok(now);
        }
        fn coldest<'a>(
            device: &FlashDevice,
            candidates: impl Iterator<Item = (u64, &'a BlockAddr)>,
        ) -> Option<u64> {
            candidates
                .filter(|(_, &a)| {
                    !device.die_is_dead(a.channel, a.die)
                        && device.block(a).is_some_and(|b| !b.is_failed())
                })
                .min_by_key(|&(vbn, &a)| {
                    let wear = device.block(a).map(|b| b.erase_count()).unwrap_or(0);
                    (wear, vbn)
                })
                .map(|(vbn, _)| vbn)
        }
        let victim = coldest(
            device,
            self.dbmt
                .iter()
                .filter(|&(vbn, _)| !self.group_has_logged_pages(vbn)),
        );
        let Some(vbn) = victim else {
            let Some(vbn) = coldest(device, self.dbmt.iter()) else {
                return Ok(now);
            };
            let group = self.group_of_vbn(vbn);
            return Ok(self.gc_group(now, device, group)?.done);
        };
        let (done, pages) = self.migrate_data_block(now, device, vbn, true)?;
        if let Some(st) = self.endurance.as_mut() {
            st.note_levelling(pages);
        }
        Ok(done)
    }

    /// Rewrites `vbn`'s data block to a newly allocated block (the
    /// most-worn spare when `most_worn`), page by page with verified
    /// reads — corrupt flags move along, never laundered — then erases
    /// the old block and remaps. The caller guarantees no newer log copy
    /// of any page exists (see [`ZngFtl::group_has_logged_pages`]).
    fn migrate_data_block(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        vbn: u64,
        most_worn: bool,
    ) -> Result<(Cycle, u64)> {
        let old = *self.dbmt.get(vbn).expect("caller verified the mapping");
        let page_bytes = device.geometry().page_bytes;
        // A program failure mid-rewrite abandons the destination (data
        // blocks stay offset-ordered) and restarts on a new block,
        // exactly like a GC merge.
        let (fresh, read_t, last_prog) = loop {
            let fresh = self.alloc_block_with(device, BlockKind::Data, most_worn)?;
            let mut read_t = now;
            let mut last_prog = now;
            let mut burned = false;
            for offset in 0..self.pages_per_block {
                let vpn = vbn * self.pages_per_block + offset;
                device.discard_register(old.channel, vpn);
                let src = FlashAddr::new(old, offset as u32);
                read_t = self.gc_read(read_t, device, src, vpn, page_bytes)?;
                let report = device.program_migrate(read_t, fresh, vpn)?;
                if report.failed {
                    burned = true;
                    break;
                }
                if device.page_is_corrupt(src) {
                    device.mark_page_corrupt(FlashAddr::new(fresh, report.page))?;
                }
                last_prog = last_prog.max(report.done);
            }
            if !burned {
                break (fresh, read_t, last_prog);
            }
            self.retire_block(device, fresh)?;
        };
        if let Some(rain) = self.rain.as_mut() {
            rain.note_program(last_prog, device, fresh)?;
        }
        let mut erased = 0u64;
        self.invalidate_whole_block(device, old)?;
        let done = last_prog.max(self.erase_or_fence(read_t, device, old, &mut erased)?);
        self.dbmt.insert(vbn, fresh);
        if let Some(ck) = self.checkpoint.as_mut() {
            ck.note_remap(vbn);
        }
        Ok((done, self.pages_per_block))
    }

    /// Estimated DBMT size in bytes (entries × 16 B), the table the MMU
    /// must hold (the paper fits it in 80 KB for 1 TB by block-granular
    /// mapping).
    pub fn dbmt_bytes(&self) -> usize {
        self.dbmt.len() * 16
    }

    /// Garbage collections performed.
    pub fn gcs(&self) -> u64 {
        self.gcs
    }

    /// Pages migrated by GC.
    pub fn migrated_pages(&self) -> u64 {
        self.migrated
    }

    /// (start, end) of every GC, for time-series plots.
    pub fn gc_events(&self) -> &[(Cycle, Cycle)] {
        &self.gc_events
    }

    /// Blocks permanently retired after failed programs/erases.
    pub fn blocks_retired(&self) -> u64 {
        self.blocks_retired
    }

    /// Writes re-driven into a new log slot after a program failure.
    pub fn write_redrives(&self) -> u64 {
        self.write_redrives
    }

    /// Free blocks (fresh + recycled) in the allocator's pool.
    pub fn free_blocks(&self) -> u64 {
        self.allocator.free()
    }

    /// Where `vpn` currently resolves on flash, if its data block exists
    /// (a verification aid for the fault property tests; does not count
    /// CAM searches or allocate blocks).
    pub fn locate(&self, vpn: u64) -> Option<FlashAddr> {
        let group = self.group_of(vpn);
        if let Some(lb) = self.lbmt.get(group) {
            if let Some((_, slot)) = lb.decoder.mappings().iter().find(|&&(k, _)| k == vpn) {
                return Some(FlashAddr::new(lb.addr, *slot));
            }
        }
        let data = self.dbmt.get(self.vbn_of(vpn))?;
        Some(FlashAddr::new(*data, (vpn % self.pages_per_block) as u32))
    }

    /// Live log-block utilization of `group` (0.0–1.0), if it exists.
    pub fn log_utilization(&self, group: u64) -> Option<f64> {
        self.lbmt
            .get(group)
            .map(|lb| 1.0 - lb.decoder.free_pages() as f64 / self.pages_per_block as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_flash::{FlashGeometry, RegisterTopology};
    use zng_types::Freq;

    use zng_flash::FaultConfig;

    fn setup(mode: WriteMode) -> (FlashDevice, ZngFtl) {
        let d = FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .unwrap();
        let f = ZngFtl::new(&d, 2, mode);
        (d, f)
    }

    #[test]
    fn reads_hit_preloaded_data_blocks() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let t = f.read(Cycle(0), &mut d, 100, 128).unwrap();
        // Sense (3600) + io + network, no program cost.
        assert!(t > Cycle(3_600) && t < Cycle(20_000), "{t}");
        assert_eq!(f.dbmt_bytes(), 16); // one DBMT entry
    }

    #[test]
    fn direct_write_lands_in_log_block_and_remaps_reads() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let w = f.write(Cycle(0), &mut d, 5).unwrap();
        // The warp retires once the RMW data is staged in a register
        // (sense + transfers + staging), well before the 100 us program.
        assert!(w.done > Cycle(3_600), "RMW fetch cost applies");
        assert!(w.done < Cycle(120_000), "program runs in the background");
        assert!(w.gc.is_none());
        // The background program did occupy the array.
        assert_eq!(d.stats().total_programs(), 1);
        // The read now resolves through the CAM to the log page.
        let (addr, cam) = f.resolve(&mut d, 5).unwrap();
        assert_eq!(cam, CAM_SEARCH_CYCLES);
        let block = d.block(addr.block).unwrap();
        assert_eq!(block.kind(), BlockKind::Log);
    }

    #[test]
    fn buffered_writes_merge_without_programs() {
        let (mut d, mut f) = setup(WriteMode::Buffered);
        for _ in 0..50 {
            let r = f.write(Cycle(0), &mut d, 7).unwrap();
            assert!(r.done < Cycle(10_000), "register writes are fast");
        }
        assert_eq!(d.stats().total_programs(), 0, "all merged in registers");
    }

    #[test]
    fn buffered_eviction_programs_log_page() {
        let (mut d, mut f) = setup(WriteMode::Buffered);
        // tiny geometry: 4 planes x 4 regs = 16 registers per package.
        // All writes target channel of group 0's log block; >16 distinct
        // pages forces evictions.
        for vpn in 0..30u64 {
            f.write(Cycle(0), &mut d, vpn).unwrap();
        }
        assert!(d.stats().total_programs() > 0);
    }

    #[test]
    fn log_block_overflow_triggers_gc() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        // tiny: 16 pages per block. Write the same page 20 times: the log
        // block (16 pages) fills and GC must merge.
        let mut t = Cycle(0);
        let mut saw_gc = false;
        for _ in 0..20 {
            let r = f.write(t, &mut d, 3).unwrap();
            t = r.done;
            if let Some(gc) = r.gc {
                saw_gc = true;
                assert!(gc.done > gc.started);
                assert!(gc.migrated_pages > 0);
                assert!(gc.erased_blocks >= 2); // data block + log block
                assert!(gc.flushed_vpns.contains(&3));
            }
        }
        assert!(saw_gc, "GC must have fired");
        assert_eq!(f.gcs(), 1);
        assert_eq!(f.gc_events().len(), 1);
        // Data still readable after the merge.
        f.read(t, &mut d, 3, 128).unwrap();
    }

    #[test]
    fn gc_preserves_all_group_pages() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        // Touch pages in two data blocks of the same group, then force GC.
        let mut t = Cycle(0);
        for vpn in [0u64, 1, 16, 17] {
            t = f.write(t, &mut d, vpn).unwrap().done;
        }
        let report = f.gc_group(t, &mut d, 0).unwrap();
        assert!(report.migrated_pages >= 32, "both blocks merged");
        t = report.done;
        for vpn in [0u64, 1, 15, 16, 31] {
            f.read(t, &mut d, vpn, 128).unwrap();
        }
        // Log utilization reset (no log block until next write).
        assert!(f.log_utilization(0).is_none());
    }

    #[test]
    fn gc_on_empty_group_is_noop() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let r = f.gc_group(Cycle(5), &mut d, 99).unwrap();
        assert_eq!(r.done, Cycle(5));
        assert_eq!(r.migrated_pages, 0);
    }

    #[test]
    fn groups_isolate_log_blocks() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        // group = vbn / 2; tiny ppb = 16 -> vpn 0 is group 0, vpn 40 is
        // group 1.
        f.write(Cycle(0), &mut d, 0).unwrap();
        f.write(Cycle(0), &mut d, 40).unwrap();
        assert!(f.log_utilization(0).unwrap() > 0.0);
        assert!(f.log_utilization(1).unwrap() > 0.0);
        assert!(f.log_utilization(2).is_none());
    }

    #[test]
    fn eol_churn_wears_out_gracefully() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        d.set_fault_config(&FaultConfig::end_of_life());
        let mut t = Cycle(0);
        let mut worn = None;
        for i in 0..400_000u64 {
            match f.write(t, &mut d, i % 64) {
                Ok(r) => t = r.done,
                Err(Error::DeviceWornOut { retired_blocks }) => {
                    worn = Some(retired_blocks);
                    break;
                }
                // The RMW fetch can hit a transient uncorrectable read;
                // the warp would simply re-issue.
                Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let retired = worn.expect("sustained EOL churn must wear the device out");
        assert!(retired > 0);
        assert!(f.blocks_retired() > 0, "the FTL retired blocks on the way");
        assert!(f.write_redrives() > 0, "failed programs were re-driven");
        assert!(d.stats().program_failures() > 0);
        // Worn out stays worn out: other groups' log blocks may absorb a
        // few more writes, but continued churn hits the exhausted pool
        // again almost immediately.
        let again = (0..200u64)
            .any(|i| matches!(f.write(t, &mut d, i % 64), Err(Error::DeviceWornOut { .. })));
        assert!(again, "the exhausted spare pool must resurface");
    }

    #[test]
    fn recovery_rebuilds_mappings_after_quiescent_power_loss() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let mut t = Cycle(0);
        for vpn in [0u64, 1, 5, 16, 40] {
            t = f.write(t, &mut d, vpn).unwrap().done;
        }
        let before: Vec<_> = (0..48u64).map(|v| f.locate(v)).collect();
        // Quiescent cut: every background program has long completed.
        let cut = t + Cycle(10_000_000);
        d.power_loss(cut);
        let rep = f.recover(cut, &mut d).unwrap();
        assert!(rep.pages_scanned > 0);
        assert_eq!(rep.torn_discarded, 0);
        assert!(rep.scan_cycles > Cycle::ZERO);
        let after: Vec<_> = (0..48u64).map(|v| f.locate(v)).collect();
        assert_eq!(before, after, "mappings survive the crash exactly");
        for vpn in [0u64, 1, 5, 16, 40] {
            f.read(cut + rep.scan_cycles, &mut d, vpn, 128).unwrap();
        }
        // The device keeps working: writes and GC still function.
        f.write(cut + rep.scan_cycles, &mut d, 7).unwrap();
    }

    #[test]
    fn recovery_discards_torn_write_and_restores_previous_version() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let w1 = f.write(Cycle(0), &mut d, 3).unwrap();
        // Let the first log program complete, then cut power right after
        // the second write's warp retires — its program is in flight.
        let quiet = w1.done + Cycle(10_000_000);
        let w2 = f.write(quiet, &mut d, 3).unwrap();
        let cut = w2.done + Cycle(1);
        let lost = d.power_loss(cut);
        assert_eq!(lost.pages_torn, 1, "the in-flight log program tears");
        let rep = f.recover(cut, &mut d).unwrap();
        assert_eq!(rep.torn_discarded, 1);
        // The previous acknowledged version is reachable again.
        let addr = f.locate(3).expect("vpn 3 still mapped");
        assert!(!d.page_is_torn(addr));
        assert_eq!(d.page_stamp(addr).map(|(k, _)| k), Some(3));
        f.read(cut + rep.scan_cycles, &mut d, 3, 128).unwrap();
    }

    #[test]
    fn recovery_is_idempotent_under_midflight_cut() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let mut t = Cycle(0);
        for i in 0..200u64 {
            t = f.write(t, &mut d, i % 48).unwrap().done;
        }
        // Cut mid-flight: the last few programs tear.
        d.power_loss(t);
        f.recover(t, &mut d).unwrap();
        let first: Vec<_> = (0..48u64).map(|v| f.locate(v)).collect();
        let free = f.free_blocks();
        // Crash during recovery, recover again: same mapping state.
        d.power_loss(t);
        f.recover(t, &mut d).unwrap();
        let second: Vec<_> = (0..48u64).map(|v| f.locate(v)).collect();
        assert_eq!(first, second);
        assert_eq!(f.free_blocks(), free);
    }

    #[test]
    fn nominal_faults_keep_all_writes_readable() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        d.set_fault_config(&FaultConfig::nominal());
        let mut t = Cycle(0);
        for i in 0..2_000u64 {
            t = f.write(t, &mut d, i % 32).unwrap().done;
        }
        for vpn in 0..32u64 {
            let (addr, _) = f.resolve(&mut d, vpn).unwrap();
            assert_eq!(f.locate(vpn), Some(addr));
        }
    }

    #[test]
    fn integrity_off_serves_corrupt_pages_unchanged() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        let t = f.read(Cycle(0), &mut d, 100, 128).unwrap();
        let addr = f.locate(100).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        // Baseline semantics: without the opt-in there is no checksum to
        // fail, so the corrupt payload flows through silently.
        f.read(t, &mut d, 100, 128).unwrap();
        assert_eq!(f.integrity_counters(), IntegrityCounters::default());
    }

    #[test]
    fn integrity_read_fails_loudly_without_redundancy() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_integrity(true);
        let t = f.read(Cycle(0), &mut d, 100, 128).unwrap();
        let addr = f.locate(100).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        match f.read(t, &mut d, 100, 128) {
            Err(Error::IntegrityViolation { .. }) => {}
            other => panic!("expected IntegrityViolation, got {other:?}"),
        }
        let c = f.integrity_counters();
        assert_eq!(c.detected, 1);
        assert_eq!(c.rereads, 1, "one charged re-read before giving up");
        assert_eq!(c.reconstructed, 0);
    }

    #[test]
    fn integrity_read_reconstructs_and_heals_with_redundancy() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_redundancy(&d, Some(RainConfig::default()));
        f.set_integrity(true);
        let t = f.read(Cycle(0), &mut d, 100, 128).unwrap();
        let addr = f.locate(100).unwrap();
        d.mark_page_corrupt(addr).unwrap();
        let t = f.read(t, &mut d, 100, 128).unwrap();
        let c = f.integrity_counters();
        assert_eq!(c.detected, 1);
        assert_eq!(c.reconstructed, 1);
        assert_eq!(c.quarantined, 1);
        // Healed: the vpn now resolves to a clean log copy; re-reading it
        // detects nothing new.
        let healed = f.locate(100).unwrap();
        assert_ne!(healed, addr);
        assert!(!d.page_is_corrupt(healed));
        f.read(t, &mut d, 100, 128).unwrap();
        assert_eq!(f.integrity_counters().detected, 1);
    }

    #[test]
    fn refresh_rewrites_disturbed_blocks_and_keeps_data_readable() {
        use crate::refresh::RefreshPolicy;
        let (mut d, mut f) = setup(WriteMode::Direct);
        d.set_endurance_tracking(Some(1));
        f.set_endurance(Some(RefreshPolicy {
            disturb_threshold: 4,
            retention_threshold: 0,
            wear_spread: 0.0,
            pacing: None,
        }));
        let mut t = f.read(Cycle(0), &mut d, 0, 128).unwrap();
        let addr = f.locate(0).unwrap();
        // Hammer the data block with array senses (alternating pages
        // defeat the sense latch, distinct keys the register cache).
        for i in 0..16u64 {
            let _ = d.read(
                t,
                FlashAddr::new(addr.block, (i % 2) as u32),
                5_000 + i,
                128,
            );
        }
        for _ in 0..64 {
            t = f.refresh_step(t, &mut d).unwrap();
            if f.endurance_counters().unwrap().refreshes > 0 {
                break;
            }
        }
        let c = f.endurance_counters().unwrap();
        assert_eq!(c.refreshes, 1, "the disturbed block must refresh");
        assert_eq!(c.disturb_refreshes, 1);
        assert!(c.refreshed_pages >= 16, "the whole block was rewritten");
        let moved = f.locate(0).unwrap();
        assert_ne!(moved.block, addr.block, "data moved to fresh cells");
        assert_eq!(
            d.block(moved.block).map(|b| b.disturb_reads()),
            Some(0),
            "the new home starts with a clean disturb clock"
        );
        f.read(t, &mut d, 0, 128).unwrap();
    }

    #[test]
    fn static_levelling_merges_logged_groups_then_migrates_cold_blocks() {
        use crate::refresh::RefreshPolicy;
        let mut g = FlashGeometry::tiny();
        g.blocks_per_plane = 2;
        g.pages_per_block = 8;
        let mut d = FlashDevice::zng_config(g, Freq::default(), RegisterTopology::NiF).unwrap();
        let mut f = ZngFtl::new(&d, 1, WriteMode::Direct);
        f.set_endurance(Some(RefreshPolicy {
            disturb_threshold: 0,
            retention_threshold: 0,
            wear_spread: 1.0,
            pacing: None,
        }));
        // One cold group written once: its full log block pins newer
        // copies, so a standalone migration must not touch it yet.
        let mut t = Cycle(0);
        for p in 0..8u64 {
            t = f.write(t, &mut d, 8 + p).unwrap().done;
        }
        // Hot churn builds wear and fills the recycled pool.
        for i in 0..200u64 {
            t = f.write(t, &mut d, i % 8).unwrap().done;
        }
        assert!(f.log_utilization(1).is_some(), "cold group still logged");
        // Every mapped group holds logged copies, so the first levelling
        // step merges the coldest group instead of migrating it...
        t = f.refresh_step(t, &mut d).unwrap();
        assert_eq!(f.log_utilization(1), None, "coldest group merged");
        assert_eq!(f.endurance_counters().unwrap().level_migrations, 0);
        let cold = f.locate(8).unwrap();
        // ...and the next step migrates it into a worn spare.
        t = f.refresh_step(t, &mut d).unwrap();
        let c = f.endurance_counters().unwrap();
        assert_eq!(c.level_migrations, 1);
        assert_eq!(c.leveled_pages, 8);
        assert_ne!(f.locate(8).unwrap().block, cold.block, "cold data moved");
        for p in 0..8u64 {
            t = f.read(t, &mut d, 8 + p, 128).unwrap();
        }
    }

    #[test]
    fn endurance_turns_worn_out_cliff_into_capacity_steps() {
        use crate::refresh::RefreshPolicy;
        let (mut d, mut f) = setup(WriteMode::Direct);
        d.set_fault_config(&FaultConfig::end_of_life());
        f.set_endurance(Some(RefreshPolicy {
            disturb_threshold: 0,
            retention_threshold: 0,
            wear_spread: 0.0,
            pacing: None,
        }));
        let mut t = Cycle(0);
        let mut degraded = None;
        for i in 0..400_000u64 {
            match f.write(t, &mut d, i % 64) {
                Ok(r) => t = r.done,
                Err(Error::CapacityDegraded { remaining_pages }) => {
                    degraded = Some(remaining_pages);
                    break;
                }
                Err(Error::UncorrectableRead { .. }) => {}
                Err(Error::DeviceWornOut { .. }) => {
                    panic!("endurance mode must degrade the cliff away")
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let remaining = degraded.expect("sustained EOL churn must exhaust the pool");
        assert!(remaining > 0, "mapped data remains advertised");
        assert_eq!(f.endurance_counters().unwrap().capacity_steps, 1);
        // Previously acknowledged data stays readable (modulo transient
        // uncorrectable senses, which the caller retries).
        for vpn in 0..64u64 {
            match f.read(t, &mut d, vpn, 128) {
                Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => panic!("read of acked vpn {vpn} failed: {e}"),
            }
        }
    }

    #[test]
    fn rebuild_reports_partial_progress_when_spares_run_dry() {
        use zng_types::ids::{ChannelId, DieId};
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_redundancy(&d, Some(RainConfig::default()));
        let ppb = d.geometry().pages_per_block as u64;
        // Map 32 data blocks; striping lands several on the doomed die.
        let mut t = Cycle(0);
        for vbn in 0..32u64 {
            t = f.read(t, &mut d, vbn * ppb, 128).unwrap();
        }
        d.fail_die(ChannelId(0), DieId(0));
        let lost: Vec<u64> = f
            .dbmt
            .iter()
            .filter(|(_, a)| d.die_is_dead(a.channel, a.die))
            .map(|(v, _)| v)
            .collect();
        assert!(lost.len() >= 2, "striping must strand several blocks");
        // Starve the spare pool down to one block: the rebuild recreates
        // at most one data block before running dry.
        let mut drained = Vec::new();
        while f.allocator.free() > 1 {
            drained.push(f.allocator.allocate().unwrap());
        }
        let (t, pages) = f
            .rebuild_dead_die(t, &mut d)
            .expect("a dry spare pool must not abort the rebuild");
        assert!(
            pages < lost.len() as u64 * ppb,
            "the dry pool must stop the rebuild part-way ({pages} pages)"
        );
        // Every lost vbn — rebuilt or stranded — keeps its mapping, and
        // the stranded ones keep serving reads through reconstruction.
        let mut t = t;
        let mut stranded = 0;
        for &vbn in &lost {
            let a = *f.dbmt.get(vbn).expect("lost vbn stays mapped");
            if d.die_is_dead(a.channel, a.die) {
                stranded += 1;
            }
            t = f.read(t, &mut d, vbn * ppb, 128).unwrap();
        }
        assert!(stranded > 0, "some blocks must still await spares");
        // Once spares return, a second pass finishes the job.
        for idx in drained {
            f.allocator.release(idx, 0);
        }
        let (_, more) = f.rebuild_dead_die(t, &mut d).unwrap();
        assert!(more > 0, "the resumed rebuild must make progress");
        assert!(
            f.dbmt.values().all(|a| !d.die_is_dead(a.channel, a.die)),
            "a resumed rebuild moves everything off the dead die"
        );
    }

    #[test]
    fn recovery_quarantines_corrupt_copies() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_integrity(true);
        let t = f.write(Cycle(0), &mut d, 5).unwrap().done;
        let t = f.write(t, &mut d, 5).unwrap().done;
        let newest = f.locate(5).unwrap();
        d.mark_page_corrupt(newest).unwrap();
        // Cut well after both background programs complete.
        d.power_loss(t + Cycle(10_000_000));
        let rep = f.recover(t + Cycle(10_000_000), &mut d).unwrap();
        assert_eq!(rep.corrupt_quarantined, 1);
        assert_eq!(f.integrity_counters().quarantined, 1);
        assert_ne!(f.locate(5), Some(newest), "never resurrected as winner");
    }

    fn ckpt_cfg(journal_cap: u64) -> crate::checkpoint::CheckpointConfig {
        crate::checkpoint::CheckpointConfig {
            every_ops: 100,
            journal_cap,
            pacing: None,
        }
    }

    #[test]
    fn checkpointed_recovery_takes_the_fast_path_and_matches_full_scan() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_checkpointing(Some(ckpt_cfg(0)));
        let mut t = Cycle(0);
        for i in 0..300u64 {
            t = f.write(t, &mut d, i % 48).unwrap().done;
        }
        t = f.checkpoint_step(t + Cycle(1_000_000), &mut d);
        for i in 0..60u64 {
            t = f.write(t, &mut d, i % 12).unwrap().done;
        }
        // Quiesce: background programs all complete before the cut.
        let cut = t + Cycle(10_000_000);
        d.power_loss(cut);
        let (mut d2, mut f2) = (d.clone(), f.clone());
        f2.set_checkpointing(None);
        let rep = f.recover(cut, &mut d).unwrap();
        assert!(rep.fast_path && !rep.fallback, "{rep:?}");
        assert!(rep.blocks_rescanned > 0, "{rep:?}");
        let full = f2.recover(cut, &mut d2).unwrap();
        assert!(!full.fast_path && !full.fallback, "{full:?}");
        for vpn in 0..48u64 {
            assert_eq!(f.locate(vpn), f2.locate(vpn), "vpn {vpn}");
        }
        assert_eq!(f.free_blocks(), f2.free_blocks());
    }

    #[test]
    fn journal_overflow_forces_fallback() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_checkpointing(Some(ckpt_cfg(4)));
        let mut t = Cycle(0);
        for i in 0..100u64 {
            t = f.write(t, &mut d, i % 24).unwrap().done;
        }
        t = f.checkpoint_step(t + Cycle(1_000_000), &mut d);
        for i in 0..200u64 {
            t = f.write(t, &mut d, i * 7 % 96).unwrap().done;
        }
        let c = f.checkpoint_counters().unwrap();
        assert!(c.journal_overflows > 0, "{c:?}");
        let cut = t + Cycle(10_000_000);
        d.power_loss(cut);
        let rep = f.recover(cut, &mut d).unwrap();
        assert!(!rep.fast_path && rep.fallback, "{rep:?}");
        for vpn in 0..24u64 {
            assert!(f.locate(vpn).is_some() || f.read(cut, &mut d, vpn, 128).is_ok());
        }
    }

    fn degrading(onset: u64, death: u64) -> FaultConfig {
        FaultConfig::none().with_degrading(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset,
            death,
        })
    }

    fn health_policy() -> HealthPolicy {
        HealthPolicy {
            window: 32,
            suspect_threshold: 0.05,
            evacuate: true,
            pacing: None,
        }
    }

    /// Pages of the working set whose current copy sits on die (0, 0).
    fn live_on_suspect(f: &ZngFtl) -> usize {
        (0..512u64)
            .filter(|&v| {
                f.locate(v)
                    .is_some_and(|a| a.block.channel.index() == 0 && a.block.die.index() == 0)
            })
            .count()
    }

    #[test]
    fn health_off_step_is_inert() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        assert!(!f.health_enabled());
        assert_eq!(f.health_step(Cycle(123), &mut d).unwrap(), Cycle(123));
        assert!(f.health_counters().is_none());
        assert!(f.quarantined_dies().is_empty());
    }

    #[test]
    fn health_evacuates_degrading_die_before_death() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_health(Some(health_policy()));
        let mut t = Cycle(0);
        for vpn in 0..512u64 {
            t = f.write(t, &mut d, vpn).unwrap().done;
        }
        assert!(live_on_suspect(&f) > 0, "working set must touch die (0,0)");
        let onset = t.raw() + 1_000_000;
        let death = onset + 2_000_000_000;
        d.set_fault_config(&degrading(onset, death));
        // Severity grows ~0.5 % per tick: the monitor has a long, noisy
        // runway to flag the die and drain it well before the cliff.
        let step = (death - onset) / 200;
        let mut clock = Cycle(onset);
        let mut completed = false;
        for _ in 0..96 {
            for vpn in 0..512u64 {
                let _ = f.read(clock, &mut d, vpn, 128);
            }
            clock += Cycle(step);
            f.health_step(clock, &mut d).unwrap();
            if f.health_counters().unwrap().evacuations_completed > 0 {
                completed = true;
                break;
            }
        }
        let c = f.health_counters().unwrap();
        assert!(completed, "evacuation must complete before death: {c:?}");
        assert!(c.suspects_flagged >= 1, "{c:?}");
        assert!(c.pages_evacuated > 0, "{c:?}");
        assert_eq!(f.quarantined_dies(), vec![(0, 0)]);
        assert_eq!(
            live_on_suspect(&f),
            0,
            "no live page remains on the suspect"
        );
        // The die dies; the monitor fences it on its next tick. With the
        // data long gone, the death never costs a single read.
        clock = Cycle(death + 1);
        f.health_step(clock, &mut d).unwrap();
        assert!(d.dead_dies().contains(&(0, 0)));
        assert_eq!(f.health_counters().unwrap().dead_dies_fenced, 1);
        for vpn in 0..512u64 {
            f.read(clock, &mut d, vpn, 128).unwrap();
        }
        assert_eq!(d.dead_die_reads(), 0, "the death cost zero reads");
    }

    #[test]
    fn health_rehabilitates_a_false_positive_die() {
        let (mut d, mut f) = setup(WriteMode::Direct);
        f.set_health(Some(HealthPolicy {
            evacuate: false,
            ..health_policy()
        }));
        let mut t = Cycle(0);
        for vpn in 0..512u64 {
            t = f.write(t, &mut d, vpn).unwrap().done;
        }
        let onset = t.raw() + 1_000_000;
        let death = onset + 2_000_000_000;
        d.set_fault_config(&degrading(onset, death));
        let step = (death - onset) / 200;
        let mut clock = Cycle(onset);
        for _ in 0..96 {
            if !f.quarantined_dies().is_empty() {
                break;
            }
            for vpn in 0..512u64 {
                let _ = f.read(clock, &mut d, vpn, 128);
            }
            clock += Cycle(step);
            f.health_step(clock, &mut d).unwrap();
        }
        assert_eq!(f.quarantined_dies(), vec![(0, 0)]);
        // The noise source vanishes (a marginal solder joint reseats,
        // say): the telemetry goes quiet and the clean streak clears it.
        d.set_fault_config(&FaultConfig::none());
        for _ in 0..16 {
            if f.quarantined_dies().is_empty() {
                break;
            }
            for vpn in 0..512u64 {
                f.read(clock, &mut d, vpn, 128).unwrap();
            }
            f.health_step(clock, &mut d).unwrap();
        }
        assert!(f.quarantined_dies().is_empty(), "false positive must clear");
        let c = f.health_counters().unwrap();
        assert_eq!(c.rehabilitations, 1, "{c:?}");
        assert_eq!(c.pages_evacuated, 0, "no data moved for a false positive");
    }
}
