//! GC pacing: bounding how long a log-block merge may stall foreground
//! traffic.
//!
//! A full log-block merge can take hundreds of microseconds; without
//! pacing the victim application is blocked for the whole merge (ZnG's
//! baseline behaviour, paper §V-A / Fig. 17). Under overload control the
//! FTL instead publishes a *blocking deadline* alongside every merge: the
//! victim is stalled no longer than the configured budget, and the runner
//! additionally enforces a *credit* — the number of foreground events one
//! merge may stall — so end-of-life fault profiles (whose merges re-drive
//! and restart) degrade gracefully instead of collapsing. Merges that
//! outlive their deadline are counted as deadline misses; the media work
//! itself always completes (plane reservations are unaffected), only the
//! foreground stall is capped.

use zng_types::Cycle;

/// Pacing policy for log-block merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPacing {
    /// Longest foreground stall one merge may impose. A merge finishing
    /// later than `started + stall_budget` is a deadline miss and blocks
    /// only up to the deadline.
    pub stall_budget: Cycle,
    /// How many foreground events one merge may stall before the runner
    /// releases the victim app early (0 = never stall).
    pub credit_writes: u64,
}

impl GcPacing {
    /// The blocking deadline for a merge that started at `started`.
    pub fn deadline(&self, started: Cycle) -> Cycle {
        started + self.stall_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_start_plus_budget() {
        let p = GcPacing {
            stall_budget: Cycle(10_000),
            credit_writes: 4,
        };
        assert_eq!(p.deadline(Cycle(500)), Cycle(10_500));
    }
}
