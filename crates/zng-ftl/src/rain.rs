//! RAIN: redundant arrays of independent NAND (data redundancy &
//! self-healing).
//!
//! The geometry invariant behind the layout: the allocator's
//! [`zng_flash::FlashGeometry::block_for_index`] stripes channel-first, so
//! the `C` consecutive indices `[k*C, (k+1)*C)` (`C` = channels) share
//! identical die/plane/block coordinates across all `C` channels — a
//! natural **superblock**. Page `p` of every member forms **stripe**
//! `(k, p)`, protected by one XOR parity page.
//!
//! One member per superblock is reserved for parity, rotating with the
//! superblock number (`index % C == (index / C) % C`) so parity traffic
//! spreads over channels and a single die failure takes at most one
//! member from every stripe. Parity accumulates in the GPU helper
//! thread's SRAM while stripes are open and is flushed to the reserved
//! block once every data member is full; the SRAM accumulator stays
//! authoritative — the flash copy only adds a member the reconstruction
//! fan-out may have to sense.
//!
//! Reads that stay uncorrectable through the whole retry ladder (or hit a
//! dead die) are **reconstructed**: the surviving members of the stripe
//! are sensed in parallel across their channels and XOR-combined in SRAM.
//! Because the simulator carries no payload bytes, reconstruction is a
//! timing + bookkeeping model: correctness is proven through mapping and
//! OOB-stamp identity by the redundancy property suite.

use std::collections::BTreeSet;

use zng_flash::{BlockKind, FlashDevice, PageOob};
use zng_types::{BlockAddr, Cycle, Error, FlashAddr, Result};

use crate::pacing::GcPacing;
use crate::GC_READ_ATTEMPTS;

/// Cost of XOR-combining a stripe's surviving members in the helper
/// thread's SRAM after the last fan-out read lands. The combine runs at
/// SRAM bandwidth over one 4 KB page — small next to the 3 µs sense.
pub const RAIN_XOR_CYCLES: Cycle = Cycle(200);

/// Logical-key namespace for parity pages, far above any workload LPN.
/// Parity OOB records carry these keys (plus the [`BlockKind::Parity`]
/// tag) so crash-recovery scans can never mistake parity for user data.
pub(crate) const PARITY_KEY_BASE: u64 = 1 << 62;

/// Redundancy policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RainConfig {
    /// Retry-ladder depth at or above which a patrol-scrubbed page is
    /// rewritten to fresh cells (reads that needed reconstruction are
    /// always rewritten).
    pub scrub_threshold: u32,
    /// Foreground stall bound for one scrub step, reusing the GC pacing
    /// machinery: the step's media work always completes, but the caller
    /// is blocked no longer than the stall budget. `None` blocks for the
    /// full step.
    pub pacing: Option<GcPacing>,
}

impl Default for RainConfig {
    fn default() -> RainConfig {
        RainConfig {
            scrub_threshold: 2,
            pacing: None,
        }
    }
}

/// A snapshot of the redundancy subsystem's event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RainCounters {
    /// Pages rebuilt from surviving stripe members on the read path.
    pub reconstructions: u64,
    /// Member senses issued by those reconstructions.
    pub reconstruction_reads: u64,
    /// Parity pages flushed from SRAM to reserved parity blocks.
    pub parity_pages: u64,
    /// Pages the patrol scrubber sensed.
    pub scrub_scanned: u64,
    /// Scrubbed pages rewritten to fresh cells.
    pub scrub_rewrites: u64,
    /// Scrub steps whose media time overran the pacing budget (the
    /// foreground stall was capped at the budget).
    pub scrub_overruns: u64,
    /// Pages re-created onto spare blocks by a post-failure rebuild.
    pub rebuild_pages: u64,
    /// Reconstructions whose home die was dead (degraded-mode reads).
    pub degraded_reads: u64,
    /// Blocks fenced out of service because their die died.
    pub fenced_blocks: u64,
}

/// How the allocator chokepoint should treat a freshly allocated index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Claim {
    /// A plain data/log block: the FTL keeps it.
    Keep,
    /// The superblock's reserved parity member: RAIN claimed it.
    Parity,
    /// The block sits on a dead die: retire it and allocate again.
    Fenced,
}

/// Per-FTL redundancy state: stripe bookkeeping, the patrol-scrub cursor
/// and the self-healing counters.
#[derive(Debug, Clone)]
pub struct RainState {
    channels: u64,
    pages_per_block: u64,
    page_bytes: usize,
    config: RainConfig,
    /// Superblocks whose reserved parity member has been claimed out of
    /// the allocator (its kind is set to [`BlockKind::Parity`]).
    parity_claimed: BTreeSet<u64>,
    /// Superblocks whose parity block has been flushed to flash.
    parity_flushed: BTreeSet<u64>,
    /// Patrol position as a device-global page slot
    /// (`block_index * pages_per_block + page`).
    scrub_cursor: u64,
    pub(crate) reconstructions: u64,
    pub(crate) reconstruction_reads: u64,
    pub(crate) parity_pages: u64,
    pub(crate) scrub_scanned: u64,
    pub(crate) scrub_rewrites: u64,
    pub(crate) scrub_overruns: u64,
    pub(crate) rebuild_pages: u64,
    pub(crate) degraded_reads: u64,
    pub(crate) fenced_blocks: u64,
}

impl RainState {
    /// Creates redundancy state for `device`'s geometry. With fewer than
    /// two channels no stripe can exist: the state degenerates to plain
    /// bookkeeping (no parity reservation, reconstruction always fails).
    pub fn new(device: &FlashDevice, config: RainConfig) -> RainState {
        let g = device.geometry();
        RainState {
            channels: g.channels as u64,
            pages_per_block: g.pages_per_block as u64,
            page_bytes: g.page_bytes,
            config,
            parity_claimed: BTreeSet::new(),
            parity_flushed: BTreeSet::new(),
            scrub_cursor: 0,
            reconstructions: 0,
            reconstruction_reads: 0,
            parity_pages: 0,
            scrub_scanned: 0,
            scrub_rewrites: 0,
            scrub_overruns: 0,
            rebuild_pages: 0,
            degraded_reads: 0,
            fenced_blocks: 0,
        }
    }

    /// The installed policy.
    pub fn config(&self) -> RainConfig {
        self.config
    }

    /// Current event counters.
    pub fn counters(&self) -> RainCounters {
        RainCounters {
            reconstructions: self.reconstructions,
            reconstruction_reads: self.reconstruction_reads,
            parity_pages: self.parity_pages,
            scrub_scanned: self.scrub_scanned,
            scrub_rewrites: self.scrub_rewrites,
            scrub_overruns: self.scrub_overruns,
            rebuild_pages: self.rebuild_pages,
            degraded_reads: self.degraded_reads,
            fenced_blocks: self.fenced_blocks,
        }
    }

    /// Whether `idx` is its superblock's reserved parity member. The
    /// reservation rotates with the superblock number so parity load
    /// spreads across channels.
    pub fn is_parity_index(&self, idx: u64) -> bool {
        self.channels >= 2 && idx % self.channels == (idx / self.channels) % self.channels
    }

    /// The parity member index of superblock `sb`.
    fn parity_index_of(&self, sb: u64) -> u64 {
        sb * self.channels + sb % self.channels
    }

    /// Classifies a freshly allocated block index for the FTL's single
    /// allocation chokepoint: parity-reserved indices are claimed here
    /// (their block kind becomes [`BlockKind::Parity`]), dead-die indices
    /// are fenced, everything else is the FTL's to keep.
    pub(crate) fn classify(&mut self, device: &mut FlashDevice, idx: u64) -> Result<Claim> {
        let addr = device.geometry().block_for_index(idx)?;
        if device.die_is_dead(addr.channel, addr.die) {
            self.fenced_blocks += 1;
            return Ok(Claim::Fenced);
        }
        if self.is_parity_index(idx) {
            device.block_mut(addr)?.set_kind(BlockKind::Parity);
            self.parity_claimed.insert(idx / self.channels);
            return Ok(Claim::Parity);
        }
        Ok(Claim::Keep)
    }

    /// Notes a verified demand/migration program into `block`, flushing
    /// the superblock's parity once every data member is full.
    pub(crate) fn note_program(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        block: BlockAddr,
    ) -> Result<()> {
        self.maybe_flush_parity(device, block, Some(now))
    }

    /// Notes a zero-cost preload into `block`; a completed superblock's
    /// parity logically pre-resided too, so it flushes as a preload.
    pub(crate) fn note_preload(
        &mut self,
        device: &mut FlashDevice,
        block: BlockAddr,
    ) -> Result<()> {
        self.maybe_flush_parity(device, block, None)
    }

    fn maybe_flush_parity(
        &mut self,
        device: &mut FlashDevice,
        block: BlockAddr,
        now: Option<Cycle>,
    ) -> Result<()> {
        if self.channels < 2 {
            return Ok(());
        }
        let geo = *device.geometry();
        let sb = geo.index_for_block(block) / self.channels;
        if !self.parity_claimed.contains(&sb) || self.parity_flushed.contains(&sb) {
            return Ok(());
        }
        let parity_idx = self.parity_index_of(sb);
        // The stripe set closes only once every data member is full and
        // healthy; a dead or burned member keeps parity in SRAM for good.
        for j in sb * self.channels..(sb + 1) * self.channels {
            if j == parity_idx {
                continue;
            }
            let a = geo.block_for_index(j)?;
            if device.die_is_dead(a.channel, a.die) {
                return Ok(());
            }
            match device.block(a) {
                Some(b) if b.is_full() && !b.is_failed() => {}
                _ => return Ok(()),
            }
        }
        let paddr = geo.block_for_index(parity_idx)?;
        if device.die_is_dead(paddr.channel, paddr.die) {
            return Ok(());
        }
        self.parity_flushed.insert(sb);
        let mut t = now;
        for page in 0..self.pages_per_block {
            let key = PARITY_KEY_BASE + sb * self.pages_per_block + page;
            match &mut t {
                Some(t) => {
                    let rep = device.program_migrate(*t, paddr, key)?;
                    if rep.failed {
                        // A burned parity block is left partial; the SRAM
                        // accumulator still covers its stripes.
                        break;
                    }
                    *t = rep.done;
                }
                None => {
                    device.preload_page(paddr, key)?;
                }
            }
            self.parity_pages += 1;
        }
        Ok(())
    }

    /// Reconstructs the page at `addr` from its surviving stripe members:
    /// every programmed member page is sensed (fan-out in parallel across
    /// channels, each with the bounded retry ladder) and the results are
    /// XOR-combined in helper-thread SRAM. Returns the combine's
    /// completion time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UncorrectableRead`] when a second stripe member is
    /// unreadable (a dead die or an exhausted retry ladder): single-parity
    /// RAIN tolerates exactly one lost member per stripe.
    pub(crate) fn reconstruct(
        &mut self,
        now: Cycle,
        device: &mut FlashDevice,
        addr: FlashAddr,
        _transfer_bytes: usize,
    ) -> Result<Cycle> {
        let lost = Error::UncorrectableRead {
            block: addr.block.block as u64,
            page: addr.page,
            retries: GC_READ_ATTEMPTS,
        };
        if self.channels < 2 {
            return Err(lost);
        }
        let geo = *device.geometry();
        let idx = geo.index_for_block(addr.block);
        let sb = idx / self.channels;
        let mut done = now;
        let mut reads = 0u64;
        for j in sb * self.channels..(sb + 1) * self.channels {
            if j == idx {
                continue;
            }
            let maddr = geo.block_for_index(j)?;
            if device.die_is_dead(maddr.channel, maddr.die) {
                // Two dead members in one stripe: beyond single parity.
                return Err(lost);
            }
            let member = FlashAddr::new(maddr, addr.page);
            let readable = device
                .block(maddr)
                .is_some_and(|b| addr.page < b.programmed_pages() && !b.is_torn(addr.page));
            if !readable {
                // Never programmed (or torn): an all-zero contribution,
                // folded in for free.
                continue;
            }
            let key = device
                .page_stamp(member)
                .map(|(k, _)| k)
                .unwrap_or(PARITY_KEY_BASE + sb * self.pages_per_block + addr.page as u64);
            let mut landed = None;
            for _ in 0..GC_READ_ATTEMPTS {
                match device.read(now, member, key, self.page_bytes) {
                    Ok(t) => {
                        landed = Some(t);
                        break;
                    }
                    Err(Error::UncorrectableRead { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            let Some(t) = landed else {
                return Err(lost);
            };
            if device.page_is_corrupt(member) {
                // A silently corrupted member poisons the XOR combine:
                // single parity cannot tell which contribution is wrong,
                // so the reconstruction must not be served as clean data.
                return Err(Error::IntegrityViolation {
                    block: addr.block.block as u64,
                    page: addr.page,
                });
            }
            reads += 1;
            done = done.max(t);
        }
        self.reconstructions += 1;
        self.reconstruction_reads += reads;
        if device.die_is_dead(addr.block.channel, addr.block.die) {
            self.degraded_reads += 1;
        }
        Ok(done + RAIN_XOR_CYCLES)
    }

    /// Advances the patrol cursor to the next live (programmed, valid,
    /// non-parity) page and returns its location and logical page number,
    /// or `None` when the walk window found nothing to scrub. The walk is
    /// bounded to one superblock's worth of page slots per step, hopping
    /// whole blocks when they are untouched, parity, or failed.
    pub(crate) fn scrub_scan(&mut self, device: &FlashDevice) -> Option<(FlashAddr, u64)> {
        let geo = device.geometry();
        let total = geo.total_blocks() as u64 * self.pages_per_block;
        if total == 0 {
            return None;
        }
        let limit = (self.channels * self.pages_per_block).min(total);
        for _ in 0..limit {
            let slot = self.scrub_cursor % total;
            let idx = slot / self.pages_per_block;
            let page = (slot % self.pages_per_block) as u32;
            let next_block = ((idx + 1) * self.pages_per_block) % total;
            let Ok(baddr) = geo.block_for_index(idx) else {
                self.scrub_cursor = next_block;
                continue;
            };
            if device.die_is_dead(baddr.channel, baddr.die) {
                self.scrub_cursor = next_block;
                continue;
            }
            let Some(b) = device.block(baddr) else {
                self.scrub_cursor = next_block;
                continue;
            };
            if b.kind() == BlockKind::Parity
                || b.kind() == BlockKind::Checkpoint
                || b.is_failed()
                || page >= b.programmed_pages()
            {
                self.scrub_cursor = next_block;
                continue;
            }
            self.scrub_cursor = (slot + 1) % total;
            if !b.is_valid(page) || b.is_torn(page) {
                continue;
            }
            let PageOob::Written(m) = b.oob(page) else {
                continue;
            };
            return Some((FlashAddr::new(baddr, page), m.lpn));
        }
        None
    }

    /// Resets stripe bookkeeping after a crash recovery: parity lived in
    /// SRAM (lost with power) and every parity-tagged block is reclaimed
    /// by the recovery scan, so stripes restart empty. Counters and the
    /// policy survive; the patrol restarts from slot zero for determinism.
    pub(crate) fn reset_after_recovery(&mut self) {
        self.parity_claimed.clear();
        self.parity_flushed.clear();
        self.scrub_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_flash::{FlashGeometry, RegisterTopology};
    use zng_types::{
        ids::{ChannelId, DieId},
        Freq,
    };

    fn device() -> FlashDevice {
        FlashDevice::zng_config(
            FlashGeometry::tiny(),
            Freq::default(),
            RegisterTopology::NiF,
        )
        .unwrap()
    }

    #[test]
    fn parity_member_rotates_with_the_superblock() {
        let d = device();
        let r = RainState::new(&d, RainConfig::default());
        // tiny geometry: 4 channels. Superblock k reserves member k % 4.
        assert!(r.is_parity_index(0)); // sb 0 -> member 0
        assert!(r.is_parity_index(5)); // sb 1 -> member 1
        assert!(r.is_parity_index(10)); // sb 2 -> member 2
        assert!(r.is_parity_index(15)); // sb 3 -> member 3
        assert!(r.is_parity_index(16)); // sb 4 wraps back to member 0
        assert!(!r.is_parity_index(1));
        assert!(!r.is_parity_index(4));
        let per_sb: Vec<u64> = (0..8)
            .map(|sb| {
                (sb * 4..(sb + 1) * 4)
                    .filter(|&i| r.is_parity_index(i))
                    .count() as u64
            })
            .collect();
        assert_eq!(
            per_sb,
            vec![1; 8],
            "exactly one parity member per superblock"
        );
    }

    #[test]
    fn classify_claims_parity_and_fences_dead_dies() {
        let mut d = device();
        let mut r = RainState::new(&d, RainConfig::default());
        assert_eq!(r.classify(&mut d, 0).unwrap(), Claim::Parity);
        let addr = d.geometry().block_for_index(0).unwrap();
        assert_eq!(d.block(addr).unwrap().kind(), BlockKind::Parity);
        assert_eq!(r.classify(&mut d, 1).unwrap(), Claim::Keep);
        d.fail_die(ChannelId(2), DieId(0));
        // Index 2 decodes to channel 2, die 0 in the tiny geometry.
        assert_eq!(r.classify(&mut d, 2).unwrap(), Claim::Fenced);
        assert_eq!(r.counters().fenced_blocks, 1);
    }

    #[test]
    fn reconstruction_fans_out_over_surviving_members() {
        let mut d = device();
        let mut r = RainState::new(&d, RainConfig::default());
        let geo = *d.geometry();
        // Superblock 1: members 4..8, parity member 5. Program page 0 of
        // the two data members besides index 4.
        for idx in [6u64, 7] {
            let a = geo.block_for_index(idx).unwrap();
            d.program(Cycle(0), a, 100 + idx).unwrap();
        }
        let lost = geo.block_for_index(4).unwrap();
        let t = r
            .reconstruct(Cycle(1_000_000), &mut d, FlashAddr::new(lost, 0), 128)
            .unwrap();
        assert!(t > Cycle(1_000_000) + RAIN_XOR_CYCLES);
        let c = r.counters();
        assert_eq!(c.reconstructions, 1);
        assert_eq!(c.reconstruction_reads, 2, "two programmed survivors sensed");
        assert_eq!(c.degraded_reads, 0, "no die died here");
    }

    #[test]
    fn reconstruction_fails_with_two_lost_members() {
        let mut d = device();
        let mut r = RainState::new(&d, RainConfig::default());
        let geo = *d.geometry();
        d.fail_die(ChannelId(2), DieId(1)); // member 6 of superblock 1
        let lost = geo.block_for_index(4).unwrap();
        assert!(matches!(
            r.reconstruct(Cycle(0), &mut d, FlashAddr::new(lost, 0), 128),
            Err(Error::UncorrectableRead { .. })
        ));
    }

    #[test]
    fn scrub_scan_skips_parity_and_stale_pages() {
        let mut d = device();
        let mut r = RainState::new(&d, RainConfig::default());
        let geo = *d.geometry();
        // Claim index 0 as parity and program a page into it.
        assert_eq!(r.classify(&mut d, 0).unwrap(), Claim::Parity);
        let parity = geo.block_for_index(0).unwrap();
        d.program_migrate(Cycle(0), parity, PARITY_KEY_BASE)
            .unwrap();
        // A live data page on index 1 and a stale one behind it.
        let data = geo.block_for_index(1).unwrap();
        let rep = d.program(Cycle(0), data, 7).unwrap();
        let stale = d.program(Cycle(0), data, 7).unwrap();
        d.invalidate(FlashAddr::new(data, rep.page));
        let (addr, lpn) = r.scrub_scan(&d).expect("a live page exists");
        assert_eq!(lpn, 7);
        assert_eq!(addr, FlashAddr::new(data, stale.page), "stale copy skipped");
    }

    #[test]
    fn scrub_cursor_wraps_deterministically() {
        let mut d = device();
        let mut r = RainState::new(&d, RainConfig::default());
        let geo = *d.geometry();
        let data = geo.block_for_index(1).unwrap();
        d.program(Cycle(0), data, 9).unwrap();
        let first = r.scrub_scan(&d).expect("found the page");
        // Keep scanning: after a full wrap the same page comes back.
        let mut again = None;
        for _ in 0..geo.total_blocks() {
            if let Some(hit) = r.scrub_scan(&d) {
                again = Some(hit);
                break;
            }
        }
        assert_eq!(Some(first), again);
    }
}
