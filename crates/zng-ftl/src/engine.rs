//! The SSD engine: embedded cores executing FTL firmware.
//!
//! Commercial SSD controllers carry 2–5 low-power embedded cores
//! (paper §III-A). Every I/O request must be picked up, translated and
//! dispatched by one of them, which serializes the massive request stream
//! a GPU generates — the paper measures this at 67 % of HybridGPU's
//! memory access latency. [`SsdEngine`] models the cores as a small
//! server pool with a per-request firmware cost.

use zng_flash::FlashDevice;
use zng_sim::Resource;
use zng_types::{Cycle, Error, FlashAddr, Freq, Nanos, Result};

use crate::rain::RainState;
use crate::GC_READ_ATTEMPTS;

/// A read with a bounded retry budget against transient ECC-uncorrectable
/// senses — the one retry loop shared by both FTLs' GC, scrub and
/// migration paths ([`GC_READ_ATTEMPTS`] attempts, plus `extra_attempts`
/// when the health monitor grants a quarantined die a deeper ladder).
///
/// When a [`RainState`] is supplied, a read that exhausts the whole
/// ladder (or hits a dead die) is transparently reconstructed from its
/// surviving stripe members instead of failing; without one, the final
/// uncorrectable error propagates exactly as before.
pub(crate) fn retried_read(
    device: &mut FlashDevice,
    now: Cycle,
    addr: FlashAddr,
    key: u64,
    bytes: usize,
    rain: Option<&mut RainState>,
    extra_attempts: u32,
) -> Result<Cycle> {
    let budget = GC_READ_ATTEMPTS + extra_attempts;
    let mut attempt = 0;
    loop {
        match device.read(now, addr, key, bytes) {
            Ok(t) => return Ok(t),
            Err(Error::UncorrectableRead { .. }) if attempt + 1 < budget => {
                attempt += 1;
            }
            Err(e @ Error::UncorrectableRead { .. }) => {
                return match rain {
                    Some(r) => r.reconstruct(now, device, addr, bytes),
                    None => Err(e),
                };
            }
            Err(e) => return Err(e),
        }
    }
}

/// The embedded-core firmware execution model.
///
/// # Examples
///
/// ```
/// use zng_ftl::SsdEngine;
/// use zng_types::{Cycle, Freq};
///
/// let mut eng = SsdEngine::commercial(Freq::default());
/// let t1 = eng.process(Cycle(0));
/// let t2 = eng.process(Cycle(0));
/// assert!(t2 >= t1); // limited cores serialize
/// ```
#[derive(Debug, Clone)]
pub struct SsdEngine {
    cores: Resource,
    per_request: Cycle,
}

impl SsdEngine {
    /// A commercial controller: 3 embedded cores, ~500 ns of firmware
    /// work per request (queue pickup, FTL lookup, command build).
    pub fn commercial(freq: Freq) -> SsdEngine {
        SsdEngine::new(3, Nanos(500.0), freq)
    }

    /// A custom engine with `cores` cores and `per_request` firmware time.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, per_request: Nanos, freq: Freq) -> SsdEngine {
        SsdEngine {
            cores: Resource::new(cores),
            per_request: per_request.to_cycles(freq),
        }
    }

    /// Runs one request's firmware; returns when translation is done.
    pub fn process(&mut self, now: Cycle) -> Cycle {
        self.cores.acquire(now, self.per_request)
    }

    /// Requests processed so far.
    pub fn processed(&self) -> u64 {
        self.cores.served()
    }

    /// The firmware cost per request.
    pub fn per_request(&self) -> Cycle {
        self.per_request
    }

    /// Engine utilization over `[0, now]`.
    pub fn utilization(&self, now: Cycle) -> f64 {
        self.cores.utilization(now)
    }

    /// Clears reservations.
    pub fn reset(&mut self) {
        self.cores.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_cores_overlap_three_requests() {
        let mut e = SsdEngine::commercial(Freq::ghz(1.0));
        let a = e.process(Cycle(0));
        let b = e.process(Cycle(0));
        let c = e.process(Cycle(0));
        let d = e.process(Cycle(0));
        assert_eq!(a, Cycle(500));
        assert_eq!(b, Cycle(500));
        assert_eq!(c, Cycle(500));
        assert_eq!(d, Cycle(1000)); // fourth waits for a core
        assert_eq!(e.processed(), 4);
    }

    #[test]
    fn engine_throughput_is_bounded() {
        // 3 cores x 500ns => 6M requests/s. At 4 KB pages that is
        // ~24 GB/s of page traffic, but at 128 B sectors only ~0.77 GB/s:
        // exactly the paper's "engine cannot feed the GPU" argument.
        let f = Freq::ghz(1.0);
        let mut e = SsdEngine::commercial(f);
        let mut last = Cycle::ZERO;
        let n = 6_000;
        for _ in 0..n {
            last = e.process(Cycle(0));
        }
        // 6000 requests at 6 req/us => about 1 ms.
        let us = last.raw() as f64 / 1_000.0;
        assert!((us - 1_000.0).abs() < 10.0, "{us}");
    }

    #[test]
    fn custom_engine_parameters() {
        let mut e = SsdEngine::new(1, Nanos(100.0), Freq::ghz(1.0));
        assert_eq!(e.per_request(), Cycle(100));
        e.process(Cycle(0));
        assert!(e.utilization(Cycle(100)) > 0.99);
        e.reset();
        assert_eq!(e.process(Cycle(0)), Cycle(100));
    }
}
