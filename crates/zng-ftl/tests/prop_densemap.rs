//! Model-based equivalence: [`DenseMap`] must behave exactly like the
//! hash map it replaced in the FTL mapping tables (DBMT/LBMT), with one
//! strengthening — iteration is always in ascending key order, so every
//! former collect-and-sort walk stays deterministic for free.
//!
//! Keys are drawn FTL-shaped: dense low offsets under a handful of
//! app-segment bases (apps' virtual block spaces start at high fixed
//! offsets), which exercises both the within-segment dense path and the
//! cross-segment lazy allocation.

use std::collections::HashMap;

use proptest::prelude::*;
use zng_ftl::DenseMap;

proptest! {
    #[test]
    fn densemap_matches_hashmap_model(
        ops in prop::collection::vec((0u8..13, 0u64..4, 0u64..600, 0u32..1_000_000), 1..400),
    ) {
        let mut dense: DenseMap<u32> = DenseMap::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (sel, app, off, v) in ops {
            // FTL-shaped key: a dense offset under one of a few app bases.
            let k = (app << 16) + off;
            match sel {
                // Inserts dominate so the maps actually fill up.
                0..=5 => {
                    prop_assert_eq!(dense.insert(k, v), model.insert(k, v));
                }
                6..=8 => {
                    prop_assert_eq!(dense.remove(k), model.remove(&k));
                }
                9..=11 => {
                    prop_assert_eq!(dense.get(k), model.get(&k));
                    prop_assert_eq!(dense.contains_key(k), model.contains_key(&k));
                }
                _ => {
                    dense.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.is_empty(), model.is_empty());
        }
        // Same final contents, and DenseMap iteration is the model's
        // entries in ascending key order — the property the FTL's stats
        // and victim walks rely on instead of collect-and-sort.
        let mut expect: Vec<(u64, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        expect.sort_unstable();
        let got: Vec<(u64, u32)> = dense.iter().map(|(k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expect);
        let keys: Vec<u64> = dense.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }
}
