//! Property tests for the predictor and access monitor.

use proptest::prelude::*;
use zng_gpu::prefetch::{MAX_GRANULARITY, MIN_GRANULARITY};
use zng_gpu::{AccessMonitor, Predictor};
use zng_types::ids::{Pc, WarpId};

proptest! {
    #[test]
    fn monitor_granularity_stays_in_range(
        evictions in prop::collection::vec((any::<bool>(), any::<bool>()), 0..2000),
    ) {
        let mut m = AccessMonitor::default();
        for &(p, a) in &evictions {
            m.on_eviction(p, a);
            let g = m.granularity();
            prop_assert!((MIN_GRANULARITY..=MAX_GRANULARITY).contains(&g));
            prop_assert!(g.is_power_of_two() || g % 1024 == 0);
        }
    }

    #[test]
    fn predictor_counter_is_bounded(pages in prop::collection::vec(0u64..8, 1..500)) {
        let mut p = Predictor::new();
        for &page in &pages {
            p.observe(Pc(16), WarpId(0), page);
            prop_assert!(p.counter(Pc(16)) <= 15);
        }
        prop_assert!(p.accuracy() >= 0.0 && p.accuracy() <= 1.0);
    }

    #[test]
    fn steady_stream_always_predicts(n in 14usize..100) {
        let mut p = Predictor::new();
        for _ in 0..n {
            p.observe(Pc(4), WarpId(2), 99);
        }
        prop_assert!(p.should_prefetch(Pc(4)));
    }
}
