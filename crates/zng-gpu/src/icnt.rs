//! The GPU interconnect between SMs, L2 banks and memory-side ports.
//!
//! A crossbar with one injection pipe per L2 bank: high bandwidth
//! (Table I-era GPUs move >700 GB/s internally) and a small fixed
//! traversal latency. In ZnG the flash controllers hang directly off this
//! network (paper §III-B), so flash-bound traffic crosses it too.

use zng_sim::Link;
use zng_types::{ids::BankId, Cycle};

/// The SM↔L2 crossbar.
///
/// # Examples
///
/// ```
/// use zng_gpu::Interconnect;
/// use zng_types::{ids::BankId, Cycle};
///
/// let mut icnt = Interconnect::new(6, 32.0, Cycle(20));
/// let done = icnt.transfer(Cycle(0), BankId(2), 128);
/// assert_eq!(done, Cycle(24)); // 128/32 occupancy + 20 latency
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    ports: Vec<Link>,
}

impl Interconnect {
    /// Creates a crossbar with `banks` ports of `bytes_per_cycle` each and
    /// the given traversal latency.
    pub fn new(banks: usize, bytes_per_cycle: f64, latency: Cycle) -> Interconnect {
        assert!(banks > 0, "interconnect needs at least one port");
        Interconnect {
            ports: (0..banks)
                .map(|_| Link::new(bytes_per_cycle, latency))
                .collect(),
        }
    }

    /// Moves `bytes` to/from bank `bank`; returns arrival time.
    pub fn transfer(&mut self, now: Cycle, bank: BankId, bytes: usize) -> Cycle {
        let idx = bank.index() % self.ports.len();
        self.ports[idx].transfer(now, bytes)
    }

    /// Number of ports (== L2 banks).
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.ports.iter().map(|p| p.bytes_moved()).sum()
    }

    /// Clears reservations and counters.
    pub fn reset(&mut self) {
        for p in &mut self.ports {
            p.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_independent() {
        let mut i = Interconnect::new(2, 32.0, Cycle(10));
        let a = i.transfer(Cycle(0), BankId(0), 4096);
        let b = i.transfer(Cycle(0), BankId(1), 4096);
        assert_eq!(a, b);
        let c = i.transfer(Cycle(0), BankId(0), 4096);
        assert!(c > a);
    }

    #[test]
    fn bank_wraps_modulo_ports() {
        let mut i = Interconnect::new(2, 32.0, Cycle(0));
        i.transfer(Cycle(0), BankId(0), 128);
        let t = i.transfer(Cycle(0), BankId(2), 128); // same port as bank 0
        assert_eq!(t, Cycle(8));
        assert_eq!(i.bytes_moved(), 256);
    }

    #[test]
    fn reset_clears() {
        let mut i = Interconnect::new(1, 32.0, Cycle(0));
        i.transfer(Cycle(0), BankId(0), 128);
        i.reset();
        assert_eq!(i.bytes_moved(), 0);
    }
}
