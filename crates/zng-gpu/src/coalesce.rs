//! The coalescing unit: 32 thread accesses → few 128 B requests.
//!
//! Before L1D, the 32 threads of a warp present their addresses to the
//! coalescer, which merges accesses falling in the same 128 B sector
//! (paper §II-A). A fully sequential warp collapses to one request; a
//! scatter touches up to 32 sectors.

use zng_types::size::CACHE_LINE;

/// The per-warp coalescing unit.
///
/// # Examples
///
/// ```
/// use zng_gpu::Coalescer;
///
/// // 32 threads reading consecutive 4-byte words: one sector.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
/// assert_eq!(Coalescer::coalesce(&addrs), vec![0x1000]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Coalescer;

impl Coalescer {
    /// Merges thread addresses into unique 128 B sector bases, preserving
    /// first-touch order.
    pub fn coalesce(thread_addrs: &[u64]) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(4);
        for &a in thread_addrs {
            let base = a - a % CACHE_LINE as u64;
            if !out.contains(&base) {
                out.push(base);
            }
        }
        out
    }

    /// Thread addresses for a warp reading 4-byte words with stride
    /// `stride_bytes` from `base` (the paper's strided scientific
    /// kernels).
    pub fn strided_addrs(base: u64, stride_bytes: u64) -> Vec<u64> {
        (0..32).map(|i| base + i * stride_bytes).collect()
    }

    /// The sector bases a strided warp access touches.
    pub fn strided(base: u64, stride_bytes: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(4);
        Self::strided_into(base, stride_bytes, &mut out);
        out
    }

    /// Allocation-free form of [`Coalescer::strided`]: appends the
    /// coalesced sector bases to `out` (first-touch order, deduplicated
    /// against only what this call appended). The simulator calls this
    /// once per warp memory op with a reusable scratch buffer.
    pub fn strided_into(base: u64, stride_bytes: u64, out: &mut Vec<u64>) {
        let start = out.len();
        for i in 0..32u64 {
            let a = base + i * stride_bytes;
            let sector = a - a % CACHE_LINE as u64;
            if !out[start..].contains(&sector) {
                out.push(sector);
            }
        }
    }

    /// The sector bases of a scatter touching `sectors` distinct sectors
    /// spread from `base` with a page-crossing stride (graph-style
    /// irregular access: each sector lands on a different 4 KB page).
    pub fn scatter(base: u64, sectors: u8) -> Vec<u64> {
        let mut out = Vec::with_capacity(sectors as usize);
        Self::scatter_into(base, sectors, &mut out);
        out
    }

    /// Allocation-free form of [`Coalescer::scatter`], appending to `out`.
    pub fn scatter_into(base: u64, sectors: u8, out: &mut Vec<u64>) {
        // 33 sectors apart = 4224 B: consecutive requests cross pages.
        out.extend((0..sectors as u64).map(|i| {
            let a = base + i * 33 * CACHE_LINE as u64;
            a - a % CACHE_LINE as u64
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_warp_is_one_request() {
        assert_eq!(Coalescer::strided(0, 4).len(), 1);
    }

    #[test]
    fn word_stride_32_spans_8_sectors() {
        // 32 threads x 32 B stride = 1024 B = 8 sectors.
        assert_eq!(Coalescer::strided(0, 32).len(), 8);
    }

    #[test]
    fn full_scatter_is_32_requests() {
        let reqs = Coalescer::strided(0, CACHE_LINE as u64);
        assert_eq!(reqs.len(), 32);
    }

    #[test]
    fn coalesce_dedups_and_preserves_order() {
        let addrs = [300u64, 10, 260, 5, 130];
        // sectors: 256, 0, 256, 0, 128 -> [256, 0, 128]
        assert_eq!(Coalescer::coalesce(&addrs), vec![256, 0, 128]);
    }

    #[test]
    fn scatter_crosses_pages() {
        let reqs = Coalescer::scatter(0, 4);
        assert_eq!(reqs.len(), 4);
        let pages: std::collections::HashSet<u64> = reqs.iter().map(|a| a / 4096).collect();
        assert_eq!(pages.len(), 4, "each scatter sector on its own page");
    }

    #[test]
    fn coalesced_addresses_are_sector_aligned() {
        for addrs in [Coalescer::strided(12345, 52), Coalescer::scatter(999, 7)] {
            for a in addrs {
                assert_eq!(a % CACHE_LINE as u64, 0);
            }
        }
    }
}
