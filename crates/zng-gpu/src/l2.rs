//! The shared, banked L2 cache (SRAM or STT-MRAM).
//!
//! Table I: 6 banks, 1024 sets × 8 ways × 128 B = 6 MB of SRAM; the
//! STT-MRAM variant quadruples capacity (24 MB) at a 5-cycle write cost.
//! In ZnG the STT-MRAM L2 is operated **read-only** — writes bypass to
//! the flash registers — except for *pinned* lines that absorb redirected
//! dirty data when the registers thrash (paper §III-C).

use zng_sim::Resource;
use zng_types::{ids::AppId, ids::BankId, Cycle};

use crate::cache::{CacheGeometry, EvictedLine, SetAssocCache};
use crate::config::{GpuConfig, L2Technology};

/// The outcome of an L2 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Access {
    /// Whether the line was resident.
    pub hit: bool,
    /// When the bank finished the access.
    pub done: Cycle,
}

/// The shared L2.
#[derive(Debug, Clone)]
pub struct L2Cache {
    banks: Vec<SetAssocCache>,
    bank_ports: Vec<Resource>,
    tech: L2Technology,
    read_only: bool,
    line_bytes: usize,
    fills: u64,
    prefetch_fills: u64,
}

impl L2Cache {
    /// Builds the L2 from a GPU configuration.
    pub fn new(cfg: &GpuConfig) -> L2Cache {
        let geo = CacheGeometry {
            sets: cfg.l2_sets_per_bank,
            ways: cfg.l2_ways,
            line_bytes: cfg.line_bytes,
        };
        L2Cache {
            banks: (0..cfg.l2_banks).map(|_| SetAssocCache::new(geo)).collect(),
            bank_ports: (0..cfg.l2_banks).map(|_| Resource::new(1)).collect(),
            tech: cfg.l2_tech,
            read_only: false,
            line_bytes: cfg.line_bytes,
            fills: 0,
            prefetch_fills: 0,
        }
    }

    /// Marks the cache read-only (ZnG's STT-MRAM mode): [`L2Cache::access`]
    /// with `write = true` will not allocate or dirty lines.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Whether the cache refuses writes.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The bank an address maps to (line-interleaved).
    pub fn bank_of(&self, addr: u64) -> BankId {
        BankId(((addr / self.line_bytes as u64) % self.banks.len() as u64) as u16)
    }

    fn port_latency(&self, write: bool) -> Cycle {
        if write {
            Cycle(self.tech.write_cycles())
        } else {
            Cycle(self.tech.read_cycles())
        }
    }

    /// Demand access: looks up `addr`, occupying the bank port.
    ///
    /// A write to a read-only L2 is a *bypass*: it still probes (to
    /// invalidate stale data is the platform's job) but never dirties.
    pub fn access(&mut self, now: Cycle, addr: u64, write: bool) -> L2Access {
        let bank = self.bank_of(addr).index();
        let effective_write = write && !self.read_only;
        let latency = self.port_latency(effective_write);
        let done = self.bank_ports[bank].acquire(now, latency);
        let hit = self.banks[bank].lookup(addr, effective_write);
        L2Access { hit, done }
    }

    /// Fills one line; returns the displaced line (for the access
    /// monitor) and the fill-done time.
    ///
    /// Fills arrive at *future* timestamps (when the backend delivers the
    /// data) and slip into idle bank cycles, so they pay the technology's
    /// write latency but do **not** reserve the bank port — reserving a
    /// single-server resource out of time order would falsely queue every
    /// later-processed demand access behind the fill.
    pub fn fill_line(
        &mut self,
        now: Cycle,
        addr: u64,
        prefetch: bool,
        app: AppId,
    ) -> (Option<EvictedLine>, Cycle) {
        let bank = self.bank_of(addr).index();
        let done = now + self.port_latency(true);
        self.fills += 1;
        if prefetch {
            self.prefetch_fills += 1;
        }
        (self.banks[bank].fill(addr, prefetch, app), done)
    }

    /// Fills `bytes / line_bytes` consecutive lines starting at `base`
    /// (a flash-page or prefetch-granule fill). Returns displaced lines
    /// and the time the last line landed.
    pub fn fill_span(
        &mut self,
        now: Cycle,
        base: u64,
        bytes: usize,
        prefetch: bool,
        app: AppId,
    ) -> (Vec<EvictedLine>, Cycle) {
        let mut evicted = Vec::new();
        let mut done = now;
        let lines = (bytes / self.line_bytes).max(1);
        for i in 0..lines {
            let addr = base + (i * self.line_bytes) as u64;
            let (ev, t) = self.fill_line(now, addr, prefetch, app);
            if let Some(e) = ev {
                evicted.push(e);
            }
            done = done.max(t);
        }
        (evicted, done)
    }

    /// Non-destructive residency probe.
    pub fn probe(&self, addr: u64) -> bool {
        self.banks[self.bank_of(addr).index()].probe(addr)
    }

    /// Poisons `addr`'s resident line (integrity containment); returns
    /// `false` if not resident.
    pub fn poison_line(&mut self, addr: u64) -> bool {
        let bank = self.bank_of(addr).index();
        self.banks[bank].poison_line(addr)
    }

    /// Whether `addr`'s line is resident and poisoned.
    pub fn is_poisoned(&self, addr: u64) -> bool {
        self.banks[self.bank_of(addr).index()].is_poisoned(addr)
    }

    /// Currently poisoned lines across all banks.
    pub fn poisoned(&self) -> usize {
        self.banks.iter().map(|b| b.poisoned()).sum()
    }

    /// Pins `addr`'s line dirty (write redirection target). Returns
    /// `false` if not resident.
    pub fn pin_dirty(&mut self, addr: u64) -> bool {
        let bank = self.bank_of(addr).index();
        self.banks[bank].pin_dirty(addr)
    }

    /// Unpins all lines, returning dirty line addresses for write-back.
    pub fn unpin_all(&mut self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self.banks.iter_mut().flat_map(|b| b.unpin_all()).collect();
        dirty.sort_unstable();
        dirty
    }

    /// Unpins at most `max` dirty lines (bank by bank), returning them
    /// for write-back — lets the platform drain redirected writes in
    /// small batches instead of one thundering herd.
    pub fn unpin_up_to(&mut self, max: usize) -> Vec<u64> {
        let mut dirty = Vec::new();
        for bank in &mut self.banks {
            let remaining = max.saturating_sub(dirty.len());
            if remaining == 0 {
                break;
            }
            dirty.extend(bank.unpin_some(remaining));
        }
        dirty.sort_unstable();
        dirty
    }

    /// Currently pinned lines across all banks.
    pub fn pinned(&self) -> usize {
        self.banks.iter().map(|b| b.pinned()).sum()
    }

    /// Drops every resident line in every bank — pinned dirty lines
    /// included — without any write-back. This models a power cut: both
    /// SRAM and STT-MRAM L2 contents are treated as lost because the
    /// tag/state arrays are volatile even when the data array is not.
    /// Returns the number of lines lost. Hit/miss statistics survive.
    pub fn power_loss(&mut self) -> usize {
        self.banks.iter_mut().map(|b| b.invalidate_all()).sum()
    }

    /// Invalidates a line; returns `Some(dirty)` if it was resident.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let bank = self.bank_of(addr).index();
        self.banks[bank].invalidate(addr)
    }

    /// Flushes every line of `app` (GC); returns flushed line addresses.
    pub fn flush_app(&mut self, app: AppId) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .banks
            .iter_mut()
            .flat_map(|b| b.flush_app(app))
            .collect();
        out.sort_unstable();
        out
    }

    /// Aggregate demand hits.
    pub fn hits(&self) -> u64 {
        self.banks.iter().map(|b| b.hits()).sum()
    }

    /// Aggregate demand misses.
    pub fn misses(&self) -> u64 {
        self.banks.iter().map(|b| b.misses()).sum()
    }

    /// Aggregate hit rate.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Total line fills (demand + prefetch).
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Prefetch line fills.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// The storage technology.
    pub fn tech(&self) -> L2Technology {
        self.tech
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2Cache {
        L2Cache::new(&GpuConfig::tiny())
    }

    #[test]
    fn banks_interleave_by_line() {
        let c = l2();
        assert_eq!(c.bank_of(0), BankId(0));
        assert_eq!(c.bank_of(128), BankId(1));
        assert_eq!(c.bank_of(256), BankId(0));
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = l2();
        let a = c.access(Cycle(0), 0, false);
        assert!(!a.hit);
        c.fill_line(a.done, 0, false, AppId(0));
        let b = c.access(Cycle(100), 0, false);
        assert!(b.hit);
    }

    #[test]
    fn stt_mram_writes_are_slower() {
        let mut cfg = GpuConfig::tiny();
        cfg.l2_tech = L2Technology::SttMram;
        let mut c = L2Cache::new(&cfg);
        c.fill_line(Cycle(0), 0, false, AppId(0));
        let r = c.access(Cycle(100), 0, false);
        let w = c.access(Cycle(200), 0, true);
        assert_eq!(r.done - Cycle(100), Cycle(1));
        assert_eq!(w.done - Cycle(200), Cycle(5));
    }

    #[test]
    fn read_only_mode_never_dirties() {
        let mut c = l2();
        c.set_read_only(true);
        c.fill_line(Cycle(0), 0, false, AppId(0));
        c.access(Cycle(1), 0, true); // bypassed write
        assert_eq!(c.invalidate(0), Some(false), "line stayed clean");
    }

    #[test]
    fn fill_span_covers_page() {
        let mut c = l2();
        let (_, done) = c.fill_span(Cycle(0), 0, 4096, false, AppId(0));
        assert!(done > Cycle(0));
        for i in 0..32u64 {
            assert!(c.probe(i * 128), "line {i} filled");
        }
        assert_eq!(c.fills(), 32);
    }

    #[test]
    fn prefetch_fills_counted_separately() {
        let mut c = l2();
        c.fill_span(Cycle(0), 0, 1024, true, AppId(0));
        assert_eq!(c.prefetch_fills(), 8);
    }

    #[test]
    fn flush_app_scopes_to_owner() {
        let mut c = l2();
        c.fill_line(Cycle(0), 0, false, AppId(0));
        c.fill_line(Cycle(0), 128, false, AppId(1));
        let flushed = c.flush_app(AppId(1));
        assert_eq!(flushed, vec![128]);
        assert!(c.probe(0));
        assert!(!c.probe(128));
    }

    #[test]
    fn pin_and_unpin_roundtrip() {
        let mut c = l2();
        c.fill_line(Cycle(0), 0, false, AppId(0));
        assert!(c.pin_dirty(0));
        assert!(!c.pin_dirty(4096 * 64)); // not resident
        let dirty = c.unpin_all();
        assert_eq!(dirty, vec![0]);
    }

    #[test]
    fn power_loss_drops_all_banks_including_pinned() {
        let mut c = l2();
        c.fill_line(Cycle(0), 0, false, AppId(0));
        c.fill_line(Cycle(0), 128, false, AppId(1));
        assert!(c.pin_dirty(0));
        assert_eq!(c.power_loss(), 2);
        assert_eq!(c.pinned(), 0, "pinned dirty lines are gone, not drained");
        assert!(!c.probe(0));
        assert!(!c.probe(128));
    }

    #[test]
    fn poison_containment_round_trip() {
        let mut c = l2();
        c.fill_line(Cycle(0), 0, false, AppId(0));
        assert!(c.poison_line(0));
        assert!(c.is_poisoned(0));
        assert_eq!(c.poisoned(), 1);
        // A poisoned line still *hits* (the consumer checks the bit and
        // faults), never dirties, and drops cleanly on power loss.
        let a = c.access(Cycle(1), 0, true);
        assert!(a.hit);
        assert!(!c.pin_dirty(0));
        assert_eq!(c.power_loss(), 1);
        assert_eq!(c.poisoned(), 0);
        assert!(!c.is_poisoned(0));
    }

    #[test]
    fn bank_port_contention() {
        let mut c = l2();
        // Two same-bank accesses at t=0 serialize on the port.
        let a = c.access(Cycle(0), 0, false);
        let b = c.access(Cycle(0), 256, false); // bank 0 again
        assert!(b.done > a.done);
        // Different bank proceeds in parallel.
        let d = c.access(Cycle(0), 128, false);
        assert_eq!(d.done, a.done);
    }
}
