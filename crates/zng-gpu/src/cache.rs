//! The generic set-associative cache with ZnG's tag extensions.
//!
//! Beyond a textbook LRU cache, each line carries:
//!
//! * a **prefetch bit** — set when the line was filled by a prefetch;
//! * an **accessed bit** — set on the first demand hit;
//! * a **pin bit** — pinned lines are skipped by normal eviction (the
//!   write-redirection space of paper §III-C);
//! * an **app tag** — so GC can flush exactly the victim app's lines
//!   (paper §V-D).
//!
//! The prefetch/accessed pair feeds the access monitor: a line evicted
//! with `prefetch && !accessed` was a wasted prefetch (paper §IV-B).
//!
//! Lines also carry a **poison bit** for end-to-end data-integrity
//! containment: a fill fed by data that failed payload verification is
//! poisoned so every consumer faults deterministically instead of
//! computing on garbage. Poison is sticky until the line is invalidated;
//! a poisoned line never becomes dirty, so it can never be written back
//! to flash as clean data.

use zng_types::ids::AppId;

/// Shape of a cache: sets × ways of `line_bytes` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    last_use: u64,
    dirty: bool,
    prefetch: bool,
    accessed: bool,
    pinned: bool,
    poison: bool,
    app: AppId,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line base address of the victim.
    pub addr: u64,
    /// Whether it held unwritten-back data.
    pub dirty: bool,
    /// The prefetch bit at eviction.
    pub prefetch: bool,
    /// The accessed bit at eviction.
    pub accessed: bool,
    /// The owning application.
    pub app: AppId,
}

/// A set-associative LRU cache over line addresses.
///
/// # Examples
///
/// ```
/// use zng_gpu::{CacheGeometry, SetAssocCache};
/// use zng_types::ids::AppId;
///
/// let mut c = SetAssocCache::new(CacheGeometry { sets: 4, ways: 2, line_bytes: 128 });
/// assert!(!c.lookup(0x80, false));
/// c.fill(0x80, false, AppId(0));
/// assert!(c.lookup(0x80, false));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geo: CacheGeometry,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    set_shift: u32,
    set_mask: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `line_bytes` is not a power of
    /// two, or `sets` is not a power of two.
    pub fn new(geo: CacheGeometry) -> SetAssocCache {
        assert!(geo.sets > 0 && geo.ways > 0, "cache needs sets and ways");
        assert!(
            geo.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            geo.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        SetAssocCache {
            geo,
            lines: vec![Line::default(); geo.sets * geo.ways],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            set_shift: geo.line_bytes.trailing_zeros(),
            set_mask: (geo.sets - 1) as u64,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift >> self.geo.sets.trailing_zeros()
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag << self.geo.sets.trailing_zeros() | set as u64) << self.set_shift
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.geo.ways..(set + 1) * self.geo.ways
    }

    /// Demand lookup: returns whether `addr`'s line is resident; on hit,
    /// refreshes LRU, sets the accessed bit, and ORs in `write` dirtiness.
    pub fn lookup(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for i in self.slot_range(set) {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.accessed = true;
                // A poisoned line never turns dirty: its payload must not
                // reach flash via a write-back.
                line.dirty |= write && !line.poison;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Non-destructive residency probe (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.slot_range(set)
            .any(|i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Fills `addr`'s line (idempotent if already resident), evicting the
    /// LRU non-pinned way if the set is full.
    ///
    /// Returns the evicted line, if one was displaced. When every way in
    /// the set is pinned the fill is dropped (the caller treats the access
    /// as uncached) and `None` is returned.
    pub fn fill(&mut self, addr: u64, prefetch: bool, app: AppId) -> Option<EvictedLine> {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        // Already resident: refresh only.
        for i in self.slot_range(set) {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].last_use = self.tick;
                return None;
            }
        }
        // Choose an invalid way, else the LRU non-pinned way.
        let mut victim: Option<usize> = None;
        for i in self.slot_range(set) {
            if !self.lines[i].valid {
                victim = Some(i);
                break;
            }
        }
        if victim.is_none() {
            victim = self
                .slot_range(set)
                .filter(|&i| !self.lines[i].pinned)
                .min_by_key(|&i| self.lines[i].last_use);
        }
        let slot = victim?;
        let old = self.lines[slot];
        let evicted = if old.valid {
            self.evictions += 1;
            Some(EvictedLine {
                addr: self.line_addr(set, old.tag),
                dirty: old.dirty,
                prefetch: old.prefetch,
                accessed: old.accessed,
                app: old.app,
            })
        } else {
            None
        };
        self.lines[slot] = Line {
            valid: true,
            tag,
            last_use: self.tick,
            dirty: false,
            prefetch,
            accessed: false,
            pinned: false,
            poison: false,
            app,
        };
        evicted
    }

    /// Poisons `addr`'s resident line (its fill data failed integrity
    /// verification): consumers check [`SetAssocCache::is_poisoned`] and
    /// fault instead of reading garbage. Poisoning clears the dirty bit
    /// — the payload must never be written back — and is sticky until
    /// the line is invalidated or refilled. Returns `false` if the line
    /// is not resident.
    pub fn poison_line(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for i in self.slot_range(set) {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.poison = true;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Whether `addr`'s line is resident and poisoned.
    pub fn is_poisoned(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.slot_range(set)
            .any(|i| self.lines[i].valid && self.lines[i].tag == tag && self.lines[i].poison)
    }

    /// Currently poisoned lines.
    pub fn poisoned(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.poison).count()
    }

    /// Marks `addr`'s line dirty and pinned (write redirection); returns
    /// `false` if the line is not resident.
    pub fn pin_dirty(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for i in self.slot_range(set) {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                if line.poison {
                    // Redirecting writes into a poisoned line would pin
                    // bad data for an eventual write-back; refuse.
                    return false;
                }
                line.dirty = true;
                line.pinned = true;
                return true;
            }
        }
        false
    }

    /// Unpins every line (after thrashing subsides), returning the
    /// addresses of lines that remain dirty for write-back.
    pub fn unpin_all(&mut self) -> Vec<u64> {
        self.unpin_some(usize::MAX)
    }

    /// Unpins at most `max` pinned lines, returning the dirty ones for
    /// write-back. Clean pinned lines encountered on the way are unpinned
    /// for free (nothing to write back).
    pub fn unpin_some(&mut self, max: usize) -> Vec<u64> {
        let mut dirty = Vec::new();
        for set in 0..self.geo.sets {
            for i in self.slot_range(set) {
                if self.lines[i].valid && self.lines[i].pinned {
                    if self.lines[i].dirty {
                        if dirty.len() >= max {
                            return self.finish_unpin(dirty);
                        }
                        dirty.push(self.line_addr(set, self.lines[i].tag));
                    }
                    self.lines[i].pinned = false;
                    self.lines[i].dirty = false;
                }
            }
        }
        self.finish_unpin(dirty)
    }

    fn finish_unpin(&self, mut dirty: Vec<u64>) -> Vec<u64> {
        dirty.sort_unstable();
        dirty
    }

    /// Number of currently pinned lines.
    pub fn pinned(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.pinned).count()
    }

    /// Invalidates `addr`'s line; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for i in self.slot_range(set) {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.valid = false;
                line.pinned = false;
                line.poison = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Flushes every line owned by `app` (GC flush); returns the line
    /// addresses flushed, dirty ones first.
    pub fn flush_app(&mut self, app: AppId) -> Vec<u64> {
        let mut flushed = Vec::new();
        for set in 0..self.geo.sets {
            for i in self.slot_range(set) {
                if self.lines[i].valid && self.lines[i].app == app {
                    flushed.push((!self.lines[i].dirty, self.line_addr(set, self.lines[i].tag)));
                    self.lines[i].valid = false;
                    self.lines[i].pinned = false;
                }
            }
        }
        flushed.sort_unstable();
        flushed.into_iter().map(|(_, a)| a).collect()
    }

    /// Drops every line — pinned, dirty, all of it — without write-back
    /// (a power loss; redirected writes that never reached flash are
    /// gone). Returns the number of valid lines lost. Statistics survive
    /// (they are host-side accounting, not SRAM).
    pub fn invalidate_all(&mut self) -> usize {
        let mut lost = 0;
        for line in &mut self.lines {
            if line.valid {
                lost += 1;
            }
            *line = Line::default();
        }
        lost
    }

    /// The cache's shape.
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    /// Demand hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions of valid lines.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Demand hit rate (0.0 if never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            sets: 4,
            ways: 2,
            line_bytes: 128,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache();
        assert!(!c.lookup(0, false));
        c.fill(0, false, AppId(0));
        assert!(c.lookup(0, false));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn line_granularity() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        assert!(c.lookup(127, false), "same line");
        assert!(!c.lookup(128, false), "next line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = cache();
        // Set stride = 4 sets * 128 = 512; these three map to set 0.
        c.fill(0, false, AppId(0));
        c.fill(512, false, AppId(0));
        c.lookup(0, false); // refresh
        let ev = c.fill(1024, false, AppId(0)).expect("eviction");
        assert_eq!(ev.addr, 512);
        assert!(c.probe(0) && c.probe(1024) && !c.probe(512));
    }

    #[test]
    fn eviction_reports_prefetch_and_accessed_bits() {
        let mut c = cache();
        c.fill(0, true, AppId(0)); // prefetched, never touched
        c.fill(512, false, AppId(0));
        let ev = c.fill(1024, false, AppId(0)).expect("eviction");
        assert_eq!(ev.addr, 0);
        assert!(ev.prefetch && !ev.accessed, "wasted prefetch detected");

        // Now a prefetched line that *was* touched.
        let mut c = cache();
        c.fill(0, true, AppId(0));
        c.lookup(0, false);
        c.fill(512, false, AppId(0));
        c.lookup(512, false);
        let ev = c.fill(1024, false, AppId(0)).expect("eviction");
        assert!(ev.prefetch && ev.accessed);
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.lookup(0, true); // dirty it
        c.fill(512, false, AppId(0));
        c.lookup(512, false);
        let ev = c.fill(1024, false, AppId(0)).unwrap();
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn pinned_lines_survive_eviction() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        assert!(c.pin_dirty(0));
        c.fill(512, false, AppId(0));
        // Set 0 full: one pinned + one normal. New fill evicts the normal.
        let ev = c.fill(1024, false, AppId(0)).unwrap();
        assert_eq!(ev.addr, 512);
        assert!(c.probe(0), "pinned line survives");
        // Pin the second way too: now fills into this set are dropped.
        assert!(c.pin_dirty(1024));
        assert!(c.fill(2048, false, AppId(0)).is_none());
        assert!(!c.probe(2048));
    }

    #[test]
    fn unpin_returns_dirty_lines() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.pin_dirty(0);
        c.fill(128, false, AppId(0));
        c.pin_dirty(128);
        let dirty = c.unpin_all();
        assert_eq!(dirty, vec![0, 128]);
        // Unpinned lines are evictable again.
        c.fill(512, false, AppId(0));
        assert!(c.fill(1024, false, AppId(0)).is_some());
    }

    #[test]
    fn flush_app_only_touches_owner() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.fill(128, false, AppId(1));
        c.fill(256, false, AppId(0));
        let flushed = c.flush_app(AppId(0));
        assert_eq!(flushed, vec![0, 256]);
        assert!(!c.probe(0) && c.probe(128) && !c.probe(256));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.lookup(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn fill_is_idempotent_for_resident_lines() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        assert!(c.fill(0, true, AppId(1)).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_all_drops_even_pinned_dirty_lines() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.pin_dirty(0);
        c.fill(128, false, AppId(1));
        assert_eq!(c.invalidate_all(), 2);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.pinned(), 0);
        assert!(!c.probe(0) && !c.probe(128));
    }

    #[test]
    fn poison_is_sticky_and_never_dirties() {
        let mut c = cache();
        assert!(!c.poison_line(0), "not resident yet");
        c.fill(0, false, AppId(0));
        c.lookup(0, true); // dirty it first
        assert!(c.poison_line(0));
        assert!(c.is_poisoned(0));
        assert_eq!(c.poisoned(), 1);
        // Poisoning scrubbed the dirty bit and later writes cannot
        // restore it: the bad payload never reaches a write-back.
        c.lookup(0, true);
        assert!(c.is_poisoned(0), "poison survives a write hit");
        assert!(!c.pin_dirty(0), "redirection refuses poisoned lines");
        c.fill(512, false, AppId(0));
        c.lookup(512, false);
        let ev = c.fill(1024, false, AppId(0)).expect("eviction");
        assert_eq!(ev.addr, 0);
        assert!(!ev.dirty, "poisoned victim leaves as clean (dropped)");
    }

    #[test]
    fn poison_clears_on_invalidate_and_refill() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.poison_line(0);
        assert_eq!(c.invalidate(0), Some(false));
        assert!(!c.is_poisoned(0));
        c.fill(0, false, AppId(0));
        assert!(!c.is_poisoned(0), "a fresh fill starts clean");

        c.poison_line(0);
        assert_eq!(c.invalidate_all(), 1);
        assert_eq!(c.poisoned(), 0);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = cache();
        c.fill(0, false, AppId(0));
        c.lookup(0, false);
        c.lookup(128, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
