//! Trace-driven warps.
//!
//! A warp executes a linear trace of [`WarpOp`]s: compute segments
//! (counted instructions that occupy the SM's issue port) interleaved
//! with warp-wide memory operations (expanded by the coalescer into
//! 128 B requests). Traces are produced by `zng-workloads` to match the
//! paper's Table II / Fig. 5 statistics.

use std::sync::Arc;

use zng_types::{
    ids::{AppId, Pc, WarpId},
    AccessKind, Cycle, VirtAddr,
};

use crate::coalesce::Coalescer;

/// The shape of a warp-wide memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// All 32 threads in one 128 B sector (unit-stride words).
    Sequential,
    /// Threads separated by a fixed byte stride.
    Strided(u32),
    /// Irregular: `n` distinct sectors, each on its own page.
    Scatter(u8),
}

impl AccessPattern {
    /// Expands the pattern into coalesced sector base addresses.
    pub fn sectors(self, base: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(4);
        self.sectors_into(base, &mut out);
        out
    }

    /// Allocation-free form of [`AccessPattern::sectors`]: appends the
    /// request bases to `out`. The simulator's event loop calls this once
    /// per warp memory op with a reusable scratch buffer.
    pub fn sectors_into(self, base: u64, out: &mut Vec<u64>) {
        match self {
            AccessPattern::Sequential => out.push(base - base % 128),
            AccessPattern::Strided(stride) => Coalescer::strided_into(base, stride as u64, out),
            AccessPattern::Scatter(n) => Coalescer::scatter_into(base, n.max(1), out),
        }
    }
}

/// One element of a warp trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpOp {
    /// `n` arithmetic instructions (one issue slot each).
    Compute(u32),
    /// A warp-wide load/store.
    Mem {
        /// Base virtual address of the access.
        base: VirtAddr,
        /// Load or store.
        kind: AccessKind,
        /// Thread-address shape for the coalescer.
        pattern: AccessPattern,
        /// PC of the LD/ST instruction (predictor key).
        pc: Pc,
    },
}

impl WarpOp {
    /// Instructions this op contributes to IPC (a memory op is one
    /// instruction).
    pub fn instructions(&self) -> u64 {
        match self {
            WarpOp::Compute(n) => *n as u64,
            WarpOp::Mem { .. } => 1,
        }
    }
}

/// An immutable warp trace.
///
/// Ops live behind an [`Arc`] so cloning a trace (each simulated warp
/// keeps its own handle) is a refcount bump, not a copy of the op list —
/// at large volumes the op lists dominate the simulator's memory.
/// `Arc<Vec<..>>` rather than `Arc<[..]>` so construction moves the
/// generator's buffer instead of copying it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpTrace {
    ops: Arc<Vec<WarpOp>>,
}

impl WarpTrace {
    /// Wraps a list of ops.
    pub fn new(ops: Vec<WarpOp>) -> WarpTrace {
        WarpTrace { ops: Arc::new(ops) }
    }

    /// The ops in order.
    pub fn ops(&self) -> &[WarpOp] {
        &self.ops
    }

    /// Total instructions in the trace.
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(WarpOp::instructions).sum()
    }

    /// Number of memory operations.
    pub fn mem_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, WarpOp::Mem { .. }))
            .count()
    }

    /// Fraction of memory ops that are reads (Table II's read ratio).
    pub fn read_ratio(&self) -> f64 {
        let (mut reads, mut total) = (0usize, 0usize);
        for op in self.ops.iter() {
            if let WarpOp::Mem { kind, .. } = op {
                total += 1;
                if kind.is_read() {
                    reads += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            reads as f64 / total as f64
        }
    }
}

impl FromIterator<WarpOp> for WarpTrace {
    fn from_iter<T: IntoIterator<Item = WarpOp>>(iter: T) -> WarpTrace {
        WarpTrace::new(iter.into_iter().collect())
    }
}

/// A warp's execution state.
#[derive(Debug, Clone)]
pub struct Warp {
    id: WarpId,
    app: AppId,
    trace: WarpTrace,
    cursor: usize,
    /// When the warp can next issue.
    pub ready_at: Cycle,
    instructions_done: u64,
}

impl Warp {
    /// Creates a warp over `trace`, ready at time zero.
    pub fn new(id: WarpId, app: AppId, trace: WarpTrace) -> Warp {
        Warp {
            id,
            app,
            trace,
            cursor: 0,
            ready_at: Cycle::ZERO,
            instructions_done: 0,
        }
    }

    /// The warp's id.
    pub fn id(&self) -> WarpId {
        self.id
    }

    /// The owning application.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The next op to execute, if the trace is not exhausted.
    pub fn current_op(&self) -> Option<WarpOp> {
        self.trace.ops().get(self.cursor).copied()
    }

    /// Retires the current op, crediting its instructions.
    ///
    /// # Panics
    ///
    /// Panics if the trace is already exhausted.
    pub fn retire_op(&mut self) {
        let op = self
            .current_op()
            .expect("retire_op called on a finished warp");
        self.instructions_done += op.instructions();
        self.cursor += 1;
    }

    /// Whether the trace is exhausted.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.trace.ops().len()
    }

    /// Instructions retired so far.
    pub fn instructions_done(&self) -> u64 {
        self.instructions_done
    }

    /// Remaining ops.
    pub fn remaining_ops(&self) -> usize {
        self.trace.ops().len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(base: u64, kind: AccessKind) -> WarpOp {
        WarpOp::Mem {
            base: VirtAddr(base),
            kind,
            pattern: AccessPattern::Sequential,
            pc: Pc(0),
        }
    }

    #[test]
    fn trace_statistics() {
        let t = WarpTrace::new(vec![
            WarpOp::Compute(10),
            mem(0, AccessKind::Read),
            mem(128, AccessKind::Read),
            mem(256, AccessKind::Write),
        ]);
        assert_eq!(t.instructions(), 13);
        assert_eq!(t.mem_ops(), 3);
        assert!((t.read_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_ratio_is_zero() {
        let t = WarpTrace::new(vec![WarpOp::Compute(5)]);
        assert_eq!(t.read_ratio(), 0.0);
        assert_eq!(t.mem_ops(), 0);
    }

    #[test]
    fn warp_lifecycle() {
        let t = WarpTrace::new(vec![WarpOp::Compute(3), mem(0, AccessKind::Read)]);
        let mut w = Warp::new(WarpId(1), AppId(0), t);
        assert!(!w.is_done());
        assert_eq!(w.remaining_ops(), 2);
        assert!(matches!(w.current_op(), Some(WarpOp::Compute(3))));
        w.retire_op();
        assert_eq!(w.instructions_done(), 3);
        w.retire_op();
        assert_eq!(w.instructions_done(), 4);
        assert!(w.is_done());
        assert_eq!(w.current_op(), None);
    }

    #[test]
    #[should_panic(expected = "finished warp")]
    fn retire_past_end_panics() {
        let mut w = Warp::new(WarpId(0), AppId(0), WarpTrace::default());
        w.retire_op();
    }

    #[test]
    fn pattern_expansion() {
        assert_eq!(AccessPattern::Sequential.sectors(130), vec![128]);
        assert_eq!(AccessPattern::Strided(4).sectors(0).len(), 1);
        assert_eq!(AccessPattern::Strided(128).sectors(0).len(), 32);
        assert_eq!(AccessPattern::Scatter(5).sectors(0).len(), 5);
        // Scatter(0) still touches one sector.
        assert_eq!(AccessPattern::Scatter(0).sectors(0).len(), 1);
    }

    #[test]
    fn trace_from_iterator() {
        let t: WarpTrace = (0..3).map(WarpOp::Compute).collect();
        assert_eq!(t.ops().len(), 3);
        assert_eq!(t.instructions(), 3);
    }
}
