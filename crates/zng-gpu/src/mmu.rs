//! TLB and MMU with a highly-threaded page-table walker (paper §II-A).
//!
//! The MMU is shared by all SMs: a TLB fronts a 32-thread page-table
//! walker with a page-walk cache. In ZnG the page table doubles as the
//! DBMT — TLB hits therefore resolve a *flash physical* address with zero
//! extra cost, which is the paper's "zero-overhead FTL" for reads.

use zng_sim::Resource;
use zng_types::{Cycle, Result};

use crate::cache::{CacheGeometry, SetAssocCache};

/// A translation lookaside buffer over 4 KB page numbers.
#[derive(Debug, Clone)]
pub struct Tlb {
    cache: SetAssocCache,
}

impl Tlb {
    /// Creates a 4-way TLB with `entries` total entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of 4 or not a power of two.
    pub fn new(entries: usize) -> Tlb {
        assert!(
            entries >= 4 && entries.is_multiple_of(4),
            "TLB entries must be 4-way"
        );
        let sets = entries / 4;
        assert!(sets.is_power_of_two(), "TLB sets must be a power of two");
        Tlb {
            cache: SetAssocCache::new(CacheGeometry {
                sets,
                ways: 4,
                // Index the cache by vpn << 12 so line granularity = page.
                line_bytes: 4096,
            }),
        }
    }

    /// Looks up virtual page `vpn`; refreshes LRU on hit.
    pub fn lookup(&mut self, vpn: u64) -> bool {
        self.cache.lookup(vpn << 12, false)
    }

    /// Installs a translation for `vpn`.
    pub fn fill(&mut self, vpn: u64) {
        self.cache.fill(vpn << 12, false, zng_types::AppId(0));
    }

    /// Evicts `vpn` (e.g. DBMT update after GC moved the block).
    pub fn invalidate(&mut self, vpn: u64) {
        self.cache.invalidate(vpn << 12);
    }

    /// Drops every cached translation (power loss: the TLB is SRAM).
    /// Returns the number of live entries lost.
    pub fn flush_all(&mut self) -> usize {
        self.cache.invalidate_all()
    }

    /// TLB hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }
}

/// The shared MMU: TLB + page-walk cache + threaded walker.
///
/// # Examples
///
/// ```
/// use zng_gpu::Mmu;
/// use zng_types::Cycle;
///
/// let mut mmu = Mmu::new(64, 4, Cycle(200));
/// let t1 = mmu.translate(Cycle(0), 42)?; // cold: page walk
/// let t2 = mmu.translate(t1, 42)?;       // hot: TLB hit
/// assert!(t2 - t1 < t1 - Cycle(0));
/// # Ok::<(), zng_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mmu {
    tlb: Tlb,
    walker: Resource,
    walk_cache: SetAssocCache,
    /// Cost of one page-table memory access on a walk-cache miss.
    walk_mem_latency: Cycle,
    /// Page-table levels (each level is one access).
    levels: u32,
    walks: u64,
}

impl Mmu {
    /// Creates an MMU with `tlb_entries`, `walker_threads`, and the given
    /// memory latency for page-table accesses. The page table is
    /// two-level (the paper's real-GPU MMU reference).
    pub fn new(tlb_entries: usize, walker_threads: usize, walk_mem_latency: Cycle) -> Mmu {
        Mmu {
            tlb: Tlb::new(tlb_entries),
            walker: Resource::new(walker_threads),
            walk_cache: SetAssocCache::new(CacheGeometry {
                sets: 64,
                ways: 4,
                line_bytes: 4096,
            }),
            walk_mem_latency,
            levels: 2,
            walks: 0,
        }
    }

    /// Translates virtual page `vpn`; returns when the (flash-)physical
    /// address is available.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` is kept so platform code treats
    /// translation uniformly with other fallible stages.
    pub fn translate(&mut self, now: Cycle, vpn: u64) -> Result<Cycle> {
        if self.tlb.lookup(vpn) {
            return Ok(now + Cycle(1));
        }
        self.walks += 1;
        // Walk: each level hits the page-walk cache or memory.
        let mut walk_time = Cycle::ZERO;
        for level in 0..self.levels {
            // The walk reads one 8-byte table entry per level; a 4 KB
            // walk-cache line therefore covers 512 adjacent entries. The
            // level tag keeps different levels from aliasing.
            let entry_addr =
                ((level as u64) << 40) | ((vpn >> (9 * (self.levels - level - 1))) * 8);
            if self.walk_cache.lookup(entry_addr, false) {
                walk_time += Cycle(10);
            } else {
                walk_time += self.walk_mem_latency;
                self.walk_cache.fill(entry_addr, false, zng_types::AppId(0));
            }
        }
        let done = self.walker.acquire(now, walk_time);
        self.tlb.fill(vpn);
        Ok(done)
    }

    /// The TLB, for hit-rate inspection and invalidations.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Mutable TLB access (DBMT invalidation after GC).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Page walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_hit_is_one_cycle() {
        let mut m = Mmu::new(16, 4, Cycle(200));
        let t1 = m.translate(Cycle(0), 7).unwrap();
        assert!(t1 >= Cycle(200), "cold walk pays memory latency: {t1}");
        let t2 = m.translate(t1, 7).unwrap();
        assert_eq!(t2, t1 + Cycle(1));
        assert_eq!(m.walks(), 1);
    }

    #[test]
    fn walk_cache_accelerates_neighbouring_pages() {
        let mut m = Mmu::new(16, 4, Cycle(200));
        let cold = m.translate(Cycle(0), 0).unwrap();
        // Page 1 shares the level-0 entry with page 0: cheaper walk.
        let warm = m.translate(cold, 1).unwrap() - cold;
        assert!(warm < cold - Cycle(0), "warm {warm} vs cold {cold}");
    }

    #[test]
    fn walker_threads_limit_concurrency() {
        let mut m = Mmu::new(1024, 2, Cycle(100));
        // Four cold translations at t=0, but only 2 walker threads. Use
        // spaced vpns so walk-cache sharing doesn't collapse costs.
        let times: Vec<Cycle> = (0..4)
            .map(|i| m.translate(Cycle(0), (i as u64) << 20).unwrap())
            .collect();
        assert!(times[3] > times[0], "{times:?}");
    }

    #[test]
    fn invalidate_forces_rewalk() {
        let mut m = Mmu::new(16, 4, Cycle(200));
        m.translate(Cycle(0), 9).unwrap();
        m.tlb_mut().invalidate(9);
        m.translate(Cycle(10_000), 9).unwrap();
        assert_eq!(m.walks(), 2);
    }

    #[test]
    fn flush_all_forces_rewalk_of_everything() {
        let mut m = Mmu::new(16, 4, Cycle(200));
        m.translate(Cycle(0), 1).unwrap();
        m.translate(Cycle(0), 2).unwrap();
        assert_eq!(m.tlb_mut().flush_all(), 2);
        m.translate(Cycle(100_000), 1).unwrap();
        assert_eq!(m.walks(), 3, "post-flush lookup walks again");
    }

    #[test]
    fn tlb_hit_rate_reported() {
        let mut m = Mmu::new(16, 4, Cycle(100));
        m.translate(Cycle(0), 1).unwrap();
        m.translate(Cycle(0), 1).unwrap();
        m.translate(Cycle(0), 1).unwrap();
        assert!(m.tlb().hit_rate() > 0.5);
        assert_eq!(m.tlb().misses(), 1);
    }
}
