//! GPU structural configuration (paper Table I).

use zng_types::{Error, Freq, Result};

/// The L2 storage technology (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Technology {
    /// SRAM: 6 MB, 1-cycle reads and writes.
    Sram,
    /// STT-MRAM: 4× the capacity (24 MB), 1-cycle reads, 5-cycle writes.
    SttMram,
}

impl L2Technology {
    /// Read access latency in cycles.
    pub fn read_cycles(self) -> u64 {
        1
    }

    /// Write access latency in cycles (STT-MRAM writes are 5× SRAM reads).
    pub fn write_cycles(self) -> u64 {
        match self {
            L2Technology::Sram => 1,
            L2Technology::SttMram => 5,
        }
    }

    /// Capacity multiplier relative to SRAM in the same area.
    pub fn capacity_factor(self) -> usize {
        match self {
            L2Technology::Sram => 1,
            L2Technology::SttMram => 4,
        }
    }
}

/// All GPU structural parameters.
///
/// # Examples
///
/// ```
/// use zng_gpu::GpuConfig;
/// let cfg = GpuConfig::table1();
/// assert_eq!(cfg.sms, 16);
/// assert_eq!(cfg.l2_total_bytes(), 6 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Core clock.
    pub freq: Freq,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// L1D sets (64) × ways (6) × 128 B lines = 48 KB, private per SM.
    pub l1_sets: usize,
    /// L1D associativity.
    pub l1_ways: usize,
    /// L1D hit latency in cycles.
    pub l1_latency: u64,
    /// Shared L2 banks.
    pub l2_banks: usize,
    /// L2 sets per bank (1024 × 8 ways × 128 B × 6 banks = 6 MB SRAM).
    pub l2_sets_per_bank: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 storage technology.
    pub l2_tech: L2Technology,
    /// Cache line / memory access size in bytes.
    pub line_bytes: usize,
    /// L1 TLB entries.
    pub tlb_entries: usize,
    /// Concurrent page-table-walker threads.
    pub walker_threads: usize,
}

impl GpuConfig {
    /// The paper's Table I configuration (SRAM L2).
    pub fn table1() -> GpuConfig {
        GpuConfig {
            sms: 16,
            freq: Freq::ghz(1.2),
            max_warps_per_sm: 80,
            l1_sets: 64,
            l1_ways: 6,
            l1_latency: 1,
            l2_banks: 6,
            l2_sets_per_bank: 1024,
            l2_ways: 8,
            l2_tech: L2Technology::Sram,
            line_bytes: 128,
            tlb_entries: 512,
            walker_threads: 32,
        }
    }

    /// Table I with the STT-MRAM L2 (24 MB shared, ZnG's rdopt cache).
    pub fn table1_stt_mram() -> GpuConfig {
        let mut cfg = GpuConfig::table1();
        cfg.l2_tech = L2Technology::SttMram;
        // 4x capacity at the same bank/way structure: 4x the sets.
        cfg.l2_sets_per_bank *= L2Technology::SttMram.capacity_factor();
        cfg
    }

    /// A small configuration for unit tests: 2 SMs, tiny caches.
    pub fn tiny() -> GpuConfig {
        GpuConfig {
            sms: 2,
            freq: Freq::ghz(1.2),
            max_warps_per_sm: 8,
            l1_sets: 8,
            l1_ways: 2,
            l1_latency: 1,
            l2_banks: 2,
            l2_sets_per_bank: 16,
            l2_ways: 4,
            l2_tech: L2Technology::Sram,
            line_bytes: 128,
            tlb_entries: 16,
            walker_threads: 4,
        }
    }

    /// Validates structural consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero-sized structures.
    pub fn validate(&self) -> Result<()> {
        let dims = [
            ("sms", self.sms),
            ("max_warps_per_sm", self.max_warps_per_sm),
            ("l1_sets", self.l1_sets),
            ("l1_ways", self.l1_ways),
            ("l2_banks", self.l2_banks),
            ("l2_sets_per_bank", self.l2_sets_per_bank),
            ("l2_ways", self.l2_ways),
            ("line_bytes", self.line_bytes),
            ("tlb_entries", self.tlb_entries),
            ("walker_threads", self.walker_threads),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(Error::invalid_config(name, "must be non-zero"));
            }
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(Error::invalid_config(
                "line_bytes",
                "must be a power of two",
            ));
        }
        Ok(())
    }

    /// L1D capacity per SM in bytes.
    pub fn l1_total_bytes(&self) -> usize {
        self.l1_sets * self.l1_ways * self.line_bytes
    }

    /// Shared L2 capacity in bytes.
    pub fn l2_total_bytes(&self) -> usize {
        self.l2_banks * self.l2_sets_per_bank * self.l2_ways * self.line_bytes
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zng_types::size::{KIB, MIB};

    #[test]
    fn table1_sizes_match_paper() {
        let cfg = GpuConfig::table1();
        cfg.validate().unwrap();
        assert_eq!(cfg.l1_total_bytes(), 48 * KIB);
        assert_eq!(cfg.l2_total_bytes(), 6 * MIB);
        assert_eq!(cfg.max_warps_per_sm, 80);
        assert_eq!(cfg.l2_banks, 6);
    }

    #[test]
    fn stt_mram_quadruples_l2() {
        let cfg = GpuConfig::table1_stt_mram();
        assert_eq!(cfg.l2_total_bytes(), 24 * MIB);
        assert_eq!(cfg.l2_tech.write_cycles(), 5);
        assert_eq!(cfg.l2_tech.read_cycles(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = GpuConfig::tiny();
        cfg.l2_banks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuConfig::tiny();
        cfg.line_bytes = 100;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(GpuConfig::default(), GpuConfig::table1());
    }
}
