//! A streaming multiprocessor: the issue port, private L1D and MSHRs.
//!
//! The SM issues at most one warp instruction per cycle (the warp
//! scheduler's loose round-robin emerges from warps queueing at the issue
//! port). The private L1D (Table I: 64-set, 6-way, 48 KB, 1-cycle)
//! filters traffic before the shared L2.

use zng_sim::Resource;
use zng_types::{ids::AppId, ids::SmId, Cycle};

use crate::cache::{CacheGeometry, SetAssocCache};
use crate::config::GpuConfig;
use crate::mshr::Mshr;

/// One SM.
#[derive(Debug, Clone)]
pub struct Sm {
    id: SmId,
    issue: Resource,
    l1: SetAssocCache,
    l1_latency: Cycle,
    mshr: Mshr,
    instructions_issued: u64,
}

impl Sm {
    /// Builds an SM from the GPU configuration.
    pub fn new(id: SmId, cfg: &GpuConfig) -> Sm {
        Sm {
            id,
            issue: Resource::new(1),
            l1: SetAssocCache::new(CacheGeometry {
                sets: cfg.l1_sets,
                ways: cfg.l1_ways,
                line_bytes: cfg.line_bytes,
            }),
            l1_latency: Cycle(cfg.l1_latency),
            mshr: Mshr::new(64),
            instructions_issued: 0,
        }
    }

    /// The SM's id.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Issues `count` instructions starting no earlier than `now`;
    /// returns when the last one issued. One instruction per cycle.
    pub fn issue(&mut self, now: Cycle, count: u32) -> Cycle {
        self.instructions_issued += count as u64;
        self.issue.acquire(now, Cycle(count as u64))
    }

    /// Accesses the private L1D; returns `(hit, access-done time)`.
    ///
    /// Stores write through (the GPU L1 is write-through, no dirty
    /// write-backs): a write hit updates the line, a write miss does not
    /// allocate.
    pub fn l1_access(&mut self, now: Cycle, addr: u64, write: bool) -> (bool, Cycle) {
        let hit = if write {
            // Write-through, write-no-allocate.
            self.l1.probe(addr) && self.l1.lookup(addr, false)
        } else {
            self.l1.lookup(addr, false)
        };
        (hit, now + self.l1_latency)
    }

    /// Fills a line into the L1D after a miss returns.
    pub fn l1_fill(&mut self, addr: u64, app: AppId) {
        self.l1.fill(addr, false, app);
    }

    /// Invalidates an L1D line (GC flush of a victim app's data goes
    /// through L2; the L1 copy must die too).
    pub fn l1_invalidate(&mut self, addr: u64) {
        self.l1.invalidate(addr);
    }

    /// Flushes all L1D lines owned by `app`.
    pub fn l1_flush_app(&mut self, app: AppId) -> usize {
        self.l1.flush_app(app).len()
    }

    /// The SM's MSHR file (merged misses).
    pub fn mshr(&self) -> &Mshr {
        &self.mshr
    }

    /// Mutable access to the SM's MSHR file.
    pub fn mshr_mut(&mut self) -> &mut Mshr {
        &mut self.mshr
    }

    /// Power loss: drops the L1D contents and every in-flight MSHR fill.
    /// The issue port and statistics survive (they are model state, not
    /// silicon). Returns `(l1_lines_lost, mshr_entries_dropped)`.
    pub fn power_loss(&mut self) -> (usize, usize) {
        (self.l1.invalidate_all(), self.mshr.clear())
    }

    /// L1D hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.hit_rate()
    }

    /// Instructions issued by this SM.
    pub fn instructions_issued(&self) -> u64 {
        self.instructions_issued
    }

    /// When the issue port next frees up.
    pub fn issue_free_at(&self) -> Cycle {
        self.issue.earliest_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> Sm {
        Sm::new(SmId(0), &GpuConfig::tiny())
    }

    #[test]
    fn issue_serializes_instructions() {
        let mut s = sm();
        let a = s.issue(Cycle(0), 10);
        let b = s.issue(Cycle(0), 5);
        assert_eq!(a, Cycle(10));
        assert_eq!(b, Cycle(15));
        assert_eq!(s.instructions_issued(), 15);
    }

    #[test]
    fn l1_read_miss_then_fill_then_hit() {
        let mut s = sm();
        let (hit, t) = s.l1_access(Cycle(0), 0x80, false);
        assert!(!hit);
        assert_eq!(t, Cycle(1));
        s.l1_fill(0x80, AppId(0));
        let (hit, _) = s.l1_access(Cycle(5), 0x80, false);
        assert!(hit);
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut s = sm();
        let (hit, _) = s.l1_access(Cycle(0), 0x100, true);
        assert!(!hit);
        // Still not resident: write misses don't allocate.
        let (hit, _) = s.l1_access(Cycle(1), 0x100, false);
        assert!(!hit);
    }

    #[test]
    fn flush_app_clears_lines() {
        let mut s = sm();
        s.l1_fill(0, AppId(1));
        s.l1_fill(128, AppId(1));
        s.l1_fill(256, AppId(0));
        assert_eq!(s.l1_flush_app(AppId(1)), 2);
        let (hit, _) = s.l1_access(Cycle(0), 256, false);
        assert!(hit, "other app's line survives");
    }

    #[test]
    fn power_loss_empties_l1_and_mshr() {
        let mut s = sm();
        s.l1_fill(0x80, AppId(0));
        s.mshr_mut().register(7, Cycle(1_000));
        let (lines, fills) = s.power_loss();
        assert_eq!((lines, fills), (1, 1));
        let (hit, _) = s.l1_access(Cycle(0), 0x80, false);
        assert!(!hit);
        assert!(s.mshr_mut().is_empty());
    }

    #[test]
    fn invalidate_specific_line() {
        let mut s = sm();
        s.l1_fill(0x80, AppId(0));
        s.l1_invalidate(0x80);
        let (hit, _) = s.l1_access(Cycle(0), 0x80, false);
        assert!(!hit);
    }
}
