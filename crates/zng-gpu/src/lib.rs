//! GPU microarchitecture model for the ZnG simulator.
//!
//! Rebuilds the MacSim-level structures the paper's evaluation rests on
//! (Table I, GTX580-like, with a GV100-sized L2):
//!
//! * [`GpuConfig`] — all structural parameters in one place.
//! * [`SetAssocCache`] — the generic set-associative core used by L1D,
//!   L2 banks and the TLB, extended with the paper's *prefetch* and
//!   *accessed* tag bits, per-app tags (GC flush) and pinned lines
//!   (dirty-write redirection).
//! * [`Mshr`] — miss-status holding registers that merge outstanding
//!   misses at page or line granularity.
//! * [`Tlb`] / [`Mmu`] — address translation with a 32-thread page-table
//!   walker and a page-walk cache; in ZnG the MMU also resolves the DBMT
//!   (so flash translation is free for reads).
//! * [`L2Cache`] — 6 banks, SRAM (6 MB, 1-cycle) or STT-MRAM
//!   (24 MB, 1-cycle read / 5-cycle write), optional read-only mode.
//! * [`Predictor`] / [`AccessMonitor`] — the PC-based spatial-locality
//!   predictor and the dynamic prefetch-granularity monitor (§IV-B).
//! * [`Coalescer`] — merges a warp's 32 thread accesses into 128 B
//!   requests.
//! * [`Warp`] / [`Sm`] — trace-driven warps issuing through an SM's
//!   serialized issue port.
//! * [`Interconnect`] — the GPU crossbar between SMs and L2 banks.

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod icnt;
pub mod l2;
pub mod mmu;
pub mod mshr;
pub mod prefetch;
pub mod sm;
pub mod warp;

pub use cache::{CacheGeometry, EvictedLine, SetAssocCache};
pub use coalesce::Coalescer;
pub use config::{GpuConfig, L2Technology};
pub use icnt::Interconnect;
pub use l2::L2Cache;
pub use mmu::{Mmu, Tlb};
pub use mshr::Mshr;
pub use prefetch::{AccessMonitor, Predictor, PrefetchPolicy};
pub use sm::Sm;
pub use warp::{AccessPattern, Warp, WarpOp, WarpTrace};
