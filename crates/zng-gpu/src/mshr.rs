//! Miss-status holding registers: merging outstanding misses.
//!
//! When several warps miss on the same line (or, in ZnG, the same flash
//! page) while a fill is in flight, only the first goes to memory; the
//! rest complete when that fill lands. [`Mshr`] tracks in-flight fills by
//! an arbitrary key (line address or page number) with their completion
//! times and merges joiners.

use std::collections::BTreeSet;

use fxhash::{FxBuildHasher, FxHashMap};
use zng_types::Cycle;

/// In-flight fill tracker.
///
/// # Examples
///
/// ```
/// use zng_gpu::Mshr;
/// use zng_types::Cycle;
///
/// let mut mshr = Mshr::new(64);
/// assert_eq!(mshr.inflight(Cycle(0), 7), None); // nobody fetching 7
/// mshr.register(7, Cycle(100));
/// assert_eq!(mshr.inflight(Cycle(10), 7), Some(Cycle(100))); // merge
/// assert_eq!(mshr.inflight(Cycle(200), 7), None); // already landed
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    /// In-flight fills by key, pre-sized to `capacity` (the file never
    /// holds more) with the deterministic Fx hasher; victim selection is
    /// fully tie-broken on `(done, key)`, so iteration order is never
    /// observable.
    entries: FxHashMap<u64, Cycle>,
    /// Ordered mirror of `entries` as `(done, key)` pairs. Victim
    /// selection and expired-entry pruning are on the per-request hot
    /// path; the ordered index makes both O(log n) instead of a full
    /// scan of the file, with the same `(done, key)` tie-break.
    by_done: BTreeSet<(Cycle, u64)>,
    merges: u64,
    registrations: u64,
    /// Structural-hazard stalls observed through the bounded API
    /// ([`Mshr::full_until`] / [`Mshr::try_register`]).
    full_stalls: u64,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mshr {
        assert!(capacity > 0, "MSHR needs capacity");
        Mshr {
            capacity,
            entries: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            by_done: BTreeSet::new(),
            merges: 0,
            registrations: 0,
            full_stalls: 0,
        }
    }

    /// Removes `key` from both the map and the ordered index.
    fn evict(&mut self, key: u64) {
        if let Some(done) = self.entries.remove(&key) {
            self.by_done.remove(&(done, key));
        }
    }

    /// If a fill for `key` is still in flight at `now`, returns its
    /// completion time (the caller merges instead of fetching).
    pub fn inflight(&mut self, now: Cycle, key: u64) -> Option<Cycle> {
        match self.entries.get(&key) {
            Some(&done) if done > now => {
                self.merges += 1;
                Some(done)
            }
            Some(_) => {
                self.evict(key);
                None
            }
            None => None,
        }
    }

    /// Registers a new fill for `key` completing at `done`.
    ///
    /// If the file is full, expired entries are reclaimed first; when
    /// nothing has expired the oldest-completing entry is replaced (a
    /// structural-hazard approximation that keeps the model non-blocking).
    pub fn register(&mut self, key: u64, done: Cycle) {
        self.registrations += 1;
        if self.entries.len() >= self.capacity {
            // Reclaim the entry that completes earliest.
            if let Some(&(d, victim)) = self.by_done.first() {
                self.by_done.remove(&(d, victim));
                self.entries.remove(&victim);
            }
        }
        if let Some(old) = self.entries.insert(key, done) {
            self.by_done.remove(&(old, key));
        }
        self.by_done.insert((done, key));
    }

    /// Bounded-mode structural-hazard check: if the file has no free
    /// entry at `now` (after pruning landed fills), returns the earliest
    /// cycle at which one frees up — the caller backs off and retries
    /// instead of displacing an in-flight fill. Returns `None` when an
    /// entry (or a mergeable fill for `key`) is available.
    ///
    /// Each `Some` result counts one MSHR-full stall.
    pub fn full_until(&mut self, now: Cycle, key: u64) -> Option<Cycle> {
        // Prune landed fills in completion order from the index front.
        while let Some(&(done, k)) = self.by_done.first() {
            if done > now {
                break;
            }
            self.by_done.remove(&(done, k));
            self.entries.remove(&k);
        }
        if self.entries.len() < self.capacity || self.entries.contains_key(&key) {
            return None;
        }
        self.full_stalls += 1;
        let earliest = self
            .by_done
            .first()
            .map(|&(done, _)| done)
            .expect("a full MSHR file has entries");
        Some(earliest.max(now + Cycle(1)))
    }

    /// MSHR-full stalls observed through [`Mshr::full_until`].
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Drops any record for `key` (e.g. the line was invalidated).
    pub fn cancel(&mut self, key: u64) {
        self.evict(key);
    }

    /// Drops every tracked fill (power loss — nothing in flight survives).
    /// Returns the number of entries dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.by_done.clear();
        n
    }

    /// Requests that merged onto an in-flight fill.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Fills registered.
    pub fn registrations(&self) -> u64 {
        self.registrations
    }

    /// Entries currently tracked (including expired ones not yet pruned).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fills are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_while_in_flight() {
        let mut m = Mshr::new(4);
        m.register(1, Cycle(100));
        assert_eq!(m.inflight(Cycle(50), 1), Some(Cycle(100)));
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn expired_entries_are_pruned_on_query() {
        let mut m = Mshr::new(4);
        m.register(1, Cycle(100));
        assert_eq!(m.inflight(Cycle(100), 1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_replacement_keeps_latest() {
        let mut m = Mshr::new(2);
        m.register(1, Cycle(10));
        m.register(2, Cycle(20));
        m.register(3, Cycle(30)); // displaces key 1 (earliest completion)
        assert_eq!(m.len(), 2);
        assert_eq!(m.inflight(Cycle(0), 1), None);
        assert_eq!(m.inflight(Cycle(0), 3), Some(Cycle(30)));
    }

    #[test]
    fn cancel_removes() {
        let mut m = Mshr::new(2);
        m.register(5, Cycle(100));
        m.cancel(5);
        assert_eq!(m.inflight(Cycle(0), 5), None);
    }

    #[test]
    fn clear_drops_everything_in_flight() {
        let mut m = Mshr::new(4);
        m.register(1, Cycle(100));
        m.register(2, Cycle(200));
        assert_eq!(m.clear(), 2);
        assert!(m.is_empty());
        assert_eq!(m.inflight(Cycle(0), 1), None);
    }

    #[test]
    fn full_until_reports_earliest_free_slot() {
        let mut m = Mshr::new(2);
        m.register(1, Cycle(100));
        m.register(2, Cycle(200));
        assert_eq!(m.full_until(Cycle(0), 3), Some(Cycle(100)));
        assert_eq!(m.full_stalls(), 1);
        // A mergeable key is never a structural hazard.
        assert_eq!(m.full_until(Cycle(0), 1), None);
        // Once the earliest fill lands, space exists again.
        assert_eq!(m.full_until(Cycle(100), 3), None);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
