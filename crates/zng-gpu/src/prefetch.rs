//! Dynamic read prefetch: PC-based predictor + access monitor
//! (paper §IV-B, Figs. 15b and 16).
//!
//! * [`Predictor`] — a 512-entry table indexed by the PC of the LD/ST
//!   instruction. Each entry tracks the last page touched by five
//!   representative warps and a 4-bit saturating counter: +1 when a warp
//!   re-touches its recorded page, −1 (and re-record) otherwise. A read
//!   prefetch fires when the counter exceeds the cutoff (12).
//! * [`AccessMonitor`] — watches evicted prefetched lines: the waste
//!   ratio (`unused / evicted`) halves the prefetch granularity above the
//!   high threshold (0.3) and grows it by 1 KB below the low threshold
//!   (0.05), within [512 B, 4 KB].
//! * [`PrefetchPolicy`] — the Fig. 16b policy space: none, fixed 1 KB or
//!   4 KB, predictor-gated 4 KB, or fully dynamic.

use zng_types::ids::{Pc, WarpId};

/// Number of predictor-table entries (paper default).
pub const PREDICTOR_ENTRIES: usize = 512;
/// Representative warps tracked per entry.
pub const WARP_SLOTS: usize = 5;
/// Saturating counter ceiling (4 bits).
pub const COUNTER_MAX: u8 = 15;
/// Prefetch cutoff (paper: 12).
pub const PREFETCH_THRESHOLD: u8 = 12;

/// The Fig. 16b prefetch policy space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetch: fetch only the demanded 128 B sector.
    None,
    /// Always prefetch a fixed number of bytes (1 KB / 4 KB variants).
    Fixed(usize),
    /// Prefetch 4 KB only when the predictor signals locality.
    Predicted4K,
    /// Predictor-gated with monitor-adjusted granularity (ZnG default).
    Dynamic,
}

#[derive(Debug, Clone, Copy, Default)]
struct WarpSlot {
    warp: WarpId,
    page: u64,
    valid: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    pc: Pc,
    valid: bool,
    slots: [WarpSlot; WARP_SLOTS],
    next_slot: usize,
    counter: u8,
}

impl Default for Entry {
    fn default() -> Entry {
        Entry {
            pc: Pc(0),
            valid: false,
            slots: [WarpSlot::default(); WARP_SLOTS],
            next_slot: 0,
            counter: 0,
        }
    }
}

/// The PC-indexed spatial-locality predictor.
///
/// # Examples
///
/// ```
/// use zng_gpu::Predictor;
/// use zng_types::ids::{Pc, WarpId};
///
/// let mut p = Predictor::new();
/// for _ in 0..16 {
///     p.observe(Pc(0x40), WarpId(0), 7); // same page over and over
/// }
/// assert!(p.should_prefetch(Pc(0x40)));
/// ```
#[derive(Debug, Clone)]
pub struct Predictor {
    entries: Vec<Entry>,
    predictions: u64,
    correct: u64,
}

impl Predictor {
    /// Creates the 512-entry table.
    pub fn new() -> Predictor {
        Predictor {
            entries: vec![Entry::default(); PREDICTOR_ENTRIES],
            predictions: 0,
            correct: 0,
        }
    }

    fn index(pc: Pc) -> usize {
        (pc.raw() as usize) % PREDICTOR_ENTRIES
    }

    /// Records that `warp` at `pc` touched `page`, updating the counter
    /// and (for Fig. 15b) prediction-accuracy accounting.
    pub fn observe(&mut self, pc: Pc, warp: WarpId, page: u64) {
        let entry = &mut self.entries[Self::index(pc)];
        if !entry.valid || entry.pc != pc {
            // Alias or cold entry: rebuild.
            *entry = Entry {
                pc,
                valid: true,
                ..Entry::default()
            };
        }
        // Find this warp's slot. Only five *representative* warps are
        // tracked per entry (paper §IV-B): an untracked warp claims a
        // free slot if one exists, otherwise its accesses are simply not
        // observed — adopting would churn the representatives' history.
        let slot_idx = match entry.slots.iter().position(|s| s.valid && s.warp == warp) {
            Some(i) => i,
            None => {
                let Some(free) = entry.slots.iter().position(|s| !s.valid) else {
                    return;
                };
                entry.next_slot = (free + 1) % WARP_SLOTS;
                entry.slots[free] = WarpSlot {
                    warp,
                    page,
                    valid: false, // marked valid below; page set to current
                };
                free
            }
        };
        let slot = &mut entry.slots[slot_idx];
        let had_history = slot.valid;
        let same_page = slot.page == page;

        // Accuracy accounting: if the counter was above the cutoff we were
        // predicting "this warp stays on its recorded page".
        if had_history && entry.counter >= PREFETCH_THRESHOLD {
            self.predictions += 1;
            if same_page {
                self.correct += 1;
            }
        }

        if had_history && same_page {
            entry.counter = (entry.counter + 1).min(COUNTER_MAX);
        } else if had_history {
            entry.counter = entry.counter.saturating_sub(1);
            slot.page = page;
        } else {
            slot.valid = true;
            slot.page = page;
        }
    }

    /// Whether a miss at `pc` should trigger a read prefetch (cutoff
    /// test).
    pub fn should_prefetch(&self, pc: Pc) -> bool {
        let entry = &self.entries[Self::index(pc)];
        entry.valid && entry.pc == pc && entry.counter >= PREFETCH_THRESHOLD
    }

    /// The current counter value at `pc` (diagnostics).
    pub fn counter(&self, pc: Pc) -> u8 {
        let entry = &self.entries[Self::index(pc)];
        if entry.valid && entry.pc == pc {
            entry.counter
        } else {
            0
        }
    }

    /// Prediction accuracy so far (Fig. 15b); 0.0 before any prediction.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Predictions made (counter above cutoff at observation time).
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

impl Default for Predictor {
    fn default() -> Predictor {
        Predictor::new()
    }
}

/// The dynamic-granularity access monitor.
///
/// # Examples
///
/// ```
/// use zng_gpu::AccessMonitor;
///
/// let mut m = AccessMonitor::new(0.3, 0.05);
/// assert_eq!(m.granularity(), 4096);
/// // A run of wasted prefetches shrinks the granule.
/// for _ in 0..64 {
///     m.on_eviction(true, false);
/// }
/// assert!(m.granularity() < 4096);
/// ```
#[derive(Debug, Clone)]
pub struct AccessMonitor {
    high: f64,
    low: f64,
    granularity: usize,
    evicted: u64,
    unused: u64,
    window: u64,
    adjustments: u64,
}

/// Evictions per monitor decision window.
const MONITOR_WINDOW: u64 = 64;
/// Smallest prefetch granule.
pub const MIN_GRANULARITY: usize = 512;
/// Largest prefetch granule (one flash page).
pub const MAX_GRANULARITY: usize = 4096;

impl AccessMonitor {
    /// Creates a monitor with the given waste-ratio thresholds
    /// (paper-optimal: high 0.3, low 0.05).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= low < high <= 1`.
    pub fn new(high: f64, low: f64) -> AccessMonitor {
        assert!(
            (0.0..=1.0).contains(&high) && (0.0..=1.0).contains(&low) && low < high,
            "thresholds must satisfy 0 <= low < high <= 1"
        );
        AccessMonitor {
            high,
            low,
            granularity: MAX_GRANULARITY,
            evicted: 0,
            unused: 0,
            window: 0,
            adjustments: 0,
        }
    }

    /// Notes an evicted L2 line's prefetch/accessed bits.
    pub fn on_eviction(&mut self, prefetch: bool, accessed: bool) {
        if !prefetch {
            return;
        }
        self.evicted += 1;
        if !accessed {
            self.unused += 1;
        }
        self.window += 1;
        if self.window >= MONITOR_WINDOW {
            let waste = self.unused as f64 / self.evicted.max(1) as f64;
            if waste > self.high {
                self.granularity = (self.granularity / 2).max(MIN_GRANULARITY);
                self.adjustments += 1;
            } else if waste < self.low {
                self.granularity = (self.granularity + 1024).min(MAX_GRANULARITY);
                self.adjustments += 1;
            }
            self.evicted = 0;
            self.unused = 0;
            self.window = 0;
        }
    }

    /// The current prefetch granularity in bytes.
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// Granularity adjustments made.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The (high, low) thresholds.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.high, self.low)
    }
}

impl Default for AccessMonitor {
    /// The paper's best configuration: high 0.3, low 0.05.
    fn default() -> AccessMonitor {
        AccessMonitor::new(0.3, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_and_triggers() {
        let mut p = Predictor::new();
        for i in 0..40 {
            p.observe(Pc(8), WarpId(1), 99);
            if i < PREFETCH_THRESHOLD as usize {
                // Needs THRESHOLD+1 same-page observations after the first.
                assert!(!p.should_prefetch(Pc(8)), "iteration {i}");
            }
        }
        assert!(p.should_prefetch(Pc(8)));
        assert_eq!(p.counter(Pc(8)), COUNTER_MAX);
    }

    #[test]
    fn page_change_decrements() {
        let mut p = Predictor::new();
        for _ in 0..20 {
            p.observe(Pc(8), WarpId(1), 1);
        }
        assert!(p.should_prefetch(Pc(8)));
        // Random-walk pages drive the counter down.
        for page in 100..110 {
            p.observe(Pc(8), WarpId(1), page);
        }
        assert!(!p.should_prefetch(Pc(8)));
    }

    #[test]
    fn separate_warps_have_separate_slots() {
        let mut p = Predictor::new();
        // Five warps each streaming their own page: all same-page hits.
        for _ in 0..20 {
            for w in 0..WARP_SLOTS as u32 {
                p.observe(Pc(4), WarpId(w), 1000 + w as u64);
            }
        }
        assert!(p.should_prefetch(Pc(4)));
    }

    #[test]
    fn accuracy_tracks_predictions() {
        let mut p = Predictor::new();
        for _ in 0..100 {
            p.observe(Pc(4), WarpId(0), 5);
        }
        assert!(p.predictions() > 0);
        assert!((p.accuracy() - 1.0).abs() < 1e-12);
        // Break the pattern once: one wrong prediction.
        p.observe(Pc(4), WarpId(0), 6);
        assert!(p.accuracy() < 1.0);
    }

    #[test]
    fn pc_aliasing_resets_entry() {
        let mut p = Predictor::new();
        for _ in 0..20 {
            p.observe(Pc(0), WarpId(0), 1);
        }
        assert!(p.should_prefetch(Pc(0)));
        // PC 512 aliases to index 0 and evicts the entry.
        p.observe(Pc(512), WarpId(0), 2);
        assert!(!p.should_prefetch(Pc(0)));
        assert_eq!(p.counter(Pc(0)), 0);
    }

    #[test]
    fn monitor_shrinks_on_waste() {
        let mut m = AccessMonitor::default();
        for _ in 0..(MONITOR_WINDOW as usize) {
            m.on_eviction(true, false); // 100% waste
        }
        assert_eq!(m.granularity(), 2048);
        for _ in 0..(3 * MONITOR_WINDOW as usize) {
            m.on_eviction(true, false);
        }
        assert_eq!(m.granularity(), MIN_GRANULARITY, "clamped at minimum");
    }

    #[test]
    fn monitor_grows_on_useful_prefetches() {
        let mut m = AccessMonitor::default();
        // Shrink first.
        for _ in 0..(2 * MONITOR_WINDOW as usize) {
            m.on_eviction(true, false);
        }
        let small = m.granularity();
        assert!(small < MAX_GRANULARITY);
        // All prefetches used: grow by 1 KB per window.
        for _ in 0..(MONITOR_WINDOW as usize) {
            m.on_eviction(true, true);
        }
        assert_eq!(m.granularity(), (small + 1024).min(MAX_GRANULARITY));
    }

    #[test]
    fn monitor_ignores_demand_lines() {
        let mut m = AccessMonitor::default();
        for _ in 0..1000 {
            m.on_eviction(false, false);
        }
        assert_eq!(m.granularity(), MAX_GRANULARITY);
        assert_eq!(m.adjustments(), 0);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        let _ = AccessMonitor::new(0.05, 0.3);
    }

    #[test]
    fn moderate_waste_is_stable() {
        let mut m = AccessMonitor::default();
        // Waste ratio 0.125: between low (0.05) and high (0.3) -> hold.
        for i in 0..(MONITOR_WINDOW as usize) {
            m.on_eviction(true, i % 8 != 0);
        }
        assert_eq!(m.granularity(), MAX_GRANULARITY);
        assert_eq!(m.adjustments(), 0);
    }
}
