//! A scoped-thread fan-out for *independent* simulations.
//!
//! Figure sweeps, multi-platform comparisons and property-test backends
//! all run many simulations that share no state: each builds its own
//! platform instance from a configuration and a trace mix. [`parallel_map`]
//! spreads such runs across `std::thread::scope` workers while returning
//! results **in submission order**, so every table, JSON record and golden
//! file stays byte-identical to the sequential harness — only the wall
//! clock changes.
//!
//! Determinism: each run's RNG streams are seeded from its own inputs
//! (never from thread identity or time), so a run computes the same result
//! on any worker. The only shared mutation is the work-stealing cursor.
//!
//! # Examples
//!
//! ```
//! use zng_sim::parallel_map;
//!
//! let squares = parallel_map((0u64..64).collect(), |x| x * x);
//! assert_eq!(squares[10], 100); // submission order, always
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a pool of scoped worker threads and
/// returns the results in submission order.
///
/// Worker count is `min(items, available_parallelism)`; with one item
/// (or on a single-core host) the call degenerates to a plain in-thread
/// map with no thread spawned at all. A panic inside `f` propagates to
/// the caller once the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items are claimed exactly once through the shared cursor and each
    // result lands in the slot of the item that produced it, so ordering
    // is positional regardless of which worker finishes first.
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i]
                    .lock()
                    .expect("item mutex")
                    .take()
                    .expect("each item is claimed exactly once");
                let r = f(item);
                *slots[i].lock().expect("slot mutex") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex")
                .expect("every slot is filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        let inputs: Vec<u64> = (0..257).collect();
        let out = parallel_map(inputs.clone(), |x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_degenerate() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, |x| x).is_empty());
        assert_eq!(parallel_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_lands_positionally() {
        // Later items finish first; order must not change.
        let out = parallel_map((0u64..32).collect(), |x| {
            let spins = (31 - x) * 1000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_add(i ^ acc);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn non_copy_items_move_through() {
        let strings: Vec<String> = (0..40).map(|i| format!("run-{i}")).collect();
        let out = parallel_map(strings, |s| s.len());
        assert_eq!(out.len(), 40);
        assert_eq!(out[0], 5);
        assert_eq!(out[10], 6);
    }
}
