//! Discrete-event simulation kernel for the ZnG simulator.
//!
//! Three building blocks:
//!
//! * [`EventQueue`] — a deterministic time-ordered event heap (FIFO among
//!   same-cycle events).
//! * [`Resource`] / [`Link`] — occupancy-based contention models: shared
//!   hardware (an L2 bank, an ONFI channel, a flash plane, an SSD-engine
//!   core) is a set of servers that requests *reserve*; the reservation end
//!   time is the request's departure. This captures queueing and bandwidth
//!   saturation without per-cycle stepping.
//! * [`stats`] — counters, histograms and time-series samplers used to
//!   regenerate the paper's figures.
//! * [`CrashSwitch`] — a one-shot power-cut trigger for the
//!   crash-consistency experiments.
//!
//! Determinism: all randomness must flow through [`rng::seeded`]; the event
//! queue breaks timestamp ties by insertion order.

pub mod event;
pub mod parallel;
pub mod power;
pub mod resource;
pub mod rng;
pub mod stats;

pub use event::EventQueue;
pub use parallel::parallel_map;
pub use power::{CrashSwitch, PatrolTicker};
pub use resource::{Admission, AdmissionQueue, Link, Resource};
pub use stats::{Counter, Histogram, Percentiles, Ratio, TimeSeries};
