//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the simulator flows from a per-run `u64`
//! seed through [`seeded`], so identical configurations produce identical
//! results. [`Zipf`] provides the power-law sampler the graph-workload
//! generators use to reproduce the paper's page-reuse statistics
//! (Fig. 5b/5c: ~42 reads and ~65 writes to the same page).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = zng_sim::rng::seeded(7);
/// let mut b = zng_sim::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a sub-seed for component `tag` so that independent components
/// draw from decorrelated streams of the same master seed.
pub fn derive_seed(master: u64, tag: u64) -> u64 {
    // SplitMix64 finalizer: good avalanche, cheap, stable.
    let mut z = master ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Zipf(α) sampler over `0..n` via inverse-CDF binary search.
///
/// Rank 0 is the hottest item. Graph-analysis footprints are power-law
/// distributed over vertices, which is what yields the heavy page-reuse
/// the paper measures in Fig. 5.
///
/// # Examples
///
/// ```
/// use zng_sim::rng::{seeded, Zipf};
/// let z = Zipf::new(1000, 0.8);
/// let mut rng = seeded(1);
/// let hits_rank0 = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
/// let hits_rank500 = (0..10_000).filter(|_| z.sample(&mut rng) == 500).count();
/// assert!(hits_rank0 > hits_rank500);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(alpha >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..n` (0 = hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The domain size `n`.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn derive_seed_decorrelates() {
        let s1 = derive_seed(1, 0);
        let s2 = derive_seed(1, 1);
        assert_ne!(s1, s2);
        // Stable across calls.
        assert_eq!(derive_seed(1, 0), s1);
    }

    #[test]
    fn zipf_uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = seeded(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            // Each bucket should get ~10_000 draws.
            assert!((8_500..11_500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_is_skewed_for_positive_alpha() {
        let z = Zipf::new(100, 1.0);
        let mut rng = seeded(9);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
    }

    #[test]
    fn zipf_always_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = seeded(11);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
