//! Statistics primitives used to regenerate the paper's figures.

use zng_types::Cycle;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// let mut c = zng_sim::Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

/// A hit/total ratio (cache hit rate, predictor accuracy, waste ratio…).
///
/// # Examples
///
/// ```
/// let mut r = zng_sim::Ratio::default();
/// r.record(true);
/// r.record(true);
/// r.record(false);
/// assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Records one outcome.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Hits so far.
    pub fn hits(self) -> u64 {
        self.hits
    }

    /// Samples so far.
    pub fn total(self) -> u64 {
        self.total
    }

    /// The ratio, or 0.0 if nothing was recorded.
    pub fn value(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = Ratio::default();
    }
}

/// A power-of-two bucketed histogram of `u64` samples (latency, queue
/// depth, reuse counts).
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)`, with bucket 0 holding the
/// value 0 and 1.
///
/// # Examples
///
/// ```
/// let mut h = zng_sim::Histogram::new();
/// h.record(1);
/// h.record(100);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 50.0);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize; // 0 -> 0, 1 -> 1, ...
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Approximate p-th percentile (0.0–1.0) from bucket upper bounds.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        self.max
    }

    /// The raw buckets (`bucket[i]` counts samples with
    /// `highest_set_bit == i`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// An exact-percentile accumulator: keeps every sample and answers
/// nearest-rank percentile queries precisely.
///
/// [`Histogram`] trades accuracy for O(log max) memory; `Percentiles`
/// stores all samples, so it is reserved for bounded-cardinality series
/// (per-request latencies of a single run) where the QoS report needs
/// exact p50/p95/p99 numbers rather than power-of-two bucket bounds.
///
/// # Examples
///
/// ```
/// let mut p = zng_sim::Percentiles::new();
/// for v in [10u64, 20, 30, 40, 50] {
///     p.record(v);
/// }
/// assert_eq!(p.percentile(0.5), 30);
/// assert_eq!(p.percentile(1.0), 50);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Percentiles {
    samples: Vec<u64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty accumulator.
    pub fn new() -> Percentiles {
        Percentiles::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Mean of samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Exact p-th percentile (0.0–1.0) by the nearest-rank method:
    /// the smallest sample such that at least `ceil(p * count)` samples
    /// are less than or equal to it. Returns 0 if empty.
    pub fn percentile(&mut self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = (p.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        self.samples[rank.max(1) - 1]
    }

    /// Forgets all samples.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

/// A fixed-interval time series: counts events per time bucket.
///
/// Used for the paper's Fig. 17b (memory requests generated over time
/// during garbage collection).
///
/// # Examples
///
/// ```
/// use zng_types::Cycle;
/// let mut ts = zng_sim::TimeSeries::new(Cycle(100));
/// ts.record(Cycle(10), 1);
/// ts.record(Cycle(150), 2);
/// ts.record(Cycle(160), 1);
/// assert_eq!(ts.samples(), vec![1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval: Cycle,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Cycle) -> TimeSeries {
        assert!(
            interval > Cycle::ZERO,
            "time-series interval must be positive"
        );
        TimeSeries {
            interval,
            buckets: Vec::new(),
        }
    }

    /// Adds `weight` events at time `at`.
    pub fn record(&mut self, at: Cycle, weight: u64) {
        let idx = (at.raw() / self.interval.raw()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += weight;
    }

    /// The bucket width.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// The per-bucket event counts, in time order.
    pub fn samples(&self) -> Vec<u64> {
        self.buckets.clone()
    }

    /// Iterates `(bucket_start_time, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (Cycle(i as u64 * self.interval.raw()), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::default().value(), 0.0);
    }

    #[test]
    fn ratio_counts() {
        let mut r = Ratio::default();
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.hits(), 5);
        assert_eq!(r.total(), 10);
        assert!((r.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 1039);
        assert!((h.mean() - 1039.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn histogram_bucket_layout() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
    }

    #[test]
    fn percentiles_exact_on_hand_checked_inputs() {
        // Nearest-rank on [15, 20, 35, 40, 50] (the canonical worked
        // example): p30 -> rank ceil(0.3*5)=2 -> 20; p40 -> rank 2 -> 20;
        // p50 -> rank 3 -> 35; p100 -> rank 5 -> 50.
        let mut p = Percentiles::new();
        for v in [50u64, 15, 40, 35, 20] {
            p.record(v);
        }
        assert_eq!(p.percentile(0.30), 20);
        assert_eq!(p.percentile(0.40), 20);
        assert_eq!(p.percentile(0.50), 35);
        assert_eq!(p.percentile(1.00), 50);
        assert_eq!(p.percentile(0.0), 15, "p0 clamps to the minimum");
        assert_eq!(p.count(), 5);
        assert_eq!(p.max(), 50);
        assert!((p.mean() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_single_sample_and_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(0.99), 0);
        assert_eq!(p.mean(), 0.0);
        p.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(p.percentile(q), 7);
        }
        p.reset();
        assert_eq!(p.count(), 0);
        assert_eq!(p.percentile(0.5), 0);
    }

    #[test]
    fn percentiles_interleaved_record_and_query() {
        let mut p = Percentiles::new();
        for v in 1..=100u64 {
            p.record(v);
        }
        assert_eq!(p.percentile(0.50), 50);
        assert_eq!(p.percentile(0.95), 95);
        assert_eq!(p.percentile(0.99), 99);
        // Recording after a query re-sorts lazily.
        p.record(1000);
        assert_eq!(p.percentile(1.0), 1000);
        assert_eq!(p.percentile(0.5), 51);
    }

    #[test]
    fn time_series_bucketing() {
        let mut ts = TimeSeries::new(Cycle(10));
        ts.record(Cycle(0), 1);
        ts.record(Cycle(9), 1);
        ts.record(Cycle(10), 5);
        ts.record(Cycle(35), 2);
        assert_eq!(ts.samples(), vec![2, 5, 0, 2]);
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs[1], (Cycle(10), 5));
        assert_eq!(ts.interval(), Cycle(10));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn time_series_rejects_zero_interval() {
        let _ = TimeSeries::new(Cycle::ZERO);
    }
}
