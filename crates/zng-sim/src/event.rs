//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use zng_types::Cycle;

/// An entry in the heap: ordered by time, then by insertion sequence so
/// that same-cycle events pop in FIFO order (determinism).
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled, which keeps simulations reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use zng_sim::EventQueue;
/// use zng_types::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(20), "late");
/// q.schedule(Cycle(10), "early");
/// q.schedule(Cycle(10), "early2");
/// assert_eq!(q.pop(), Some((Cycle(10), "early")));
/// assert_eq!(q.pop(), Some((Cycle(10), "early2")));
/// assert_eq!(q.pop(), Some((Cycle(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 5);
        q.schedule(Cycle(1), 1);
        q.schedule(Cycle(3), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle(9), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle(9)));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
        q.schedule(Cycle(4), "b");
        q.schedule(Cycle(4), "c");
        assert_eq!(q.pop(), Some((Cycle(4), "b")));
        q.schedule(Cycle(3), "d");
        assert_eq!(q.pop(), Some((Cycle(3), "d")));
        assert_eq!(q.pop(), Some((Cycle(4), "c")));
    }
}
