//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use zng_types::Cycle;

/// An entry in the heap: ordered by time, then by insertion sequence so
/// that same-cycle events pop in FIFO order (determinism).
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled, which keeps simulations reproducible run-to-run.
///
/// Internally a binary heap keyed on `(time, sequence)`. A calendar
/// queue (per-cycle FIFO buckets in an ordered map) was measured as an
/// alternative and lost: completion times in the simulator are scattered
/// enough that buckets average about one event, so per-bucket ordered-map
/// traffic costs more than heap sifts.
///
/// # Examples
///
/// ```
/// use zng_sim::EventQueue;
/// use zng_types::Cycle;
///
/// // Pre-size to the expected population so steady state never
/// // reallocates the heap.
/// let mut q = EventQueue::with_capacity(8);
/// q.schedule(Cycle(20), "late");
/// q.schedule(Cycle(10), "early");
/// q.schedule(Cycle(10), "early2");
/// assert_eq!(q.peek(), Some((Cycle(10), &"early")));
/// assert_eq!(q.pop(), Some((Cycle(10), "early")));
/// assert_eq!(q.pop(), Some((Cycle(10), "early2")));
/// assert_eq!(q.pop(), Some((Cycle(20), "late")));
/// assert_eq!(q.pop(), None);
///
/// // Same-cycle events batch-drain in FIFO order into a reusable
/// // scratch buffer.
/// q.schedule(Cycle(5), "a");
/// q.schedule(Cycle(5), "b");
/// q.schedule(Cycle(6), "c");
/// let mut batch = Vec::new();
/// q.pop_at(Cycle(5), &mut batch);
/// assert_eq!(batch, vec!["a", "b"]);
/// assert_eq!(q.peek_time(), Some(Cycle(6)));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the heap reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Grows the heap to hold at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Events the heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The earliest pending event without removing it.
    pub fn peek(&self) -> Option<(Cycle, &E)> {
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// Drains every event scheduled exactly at `at` into `out`, in FIFO
    /// (schedule) order, without disturbing later events.
    ///
    /// `out` is appended to, not cleared — pass a reusable scratch
    /// buffer and `clear()` it between batches to keep the event loop
    /// allocation-free. Events scheduled *during* batch processing at
    /// the same cycle carry higher sequence numbers than everything
    /// already queued, so draining the next batch with another
    /// `pop_at` call preserves exactly the one-at-a-time total order.
    pub fn pop_at(&mut self, at: Cycle, out: &mut Vec<E>) {
        while let Some(entry) = self.heap.peek() {
            if entry.at != at {
                break;
            }
            let e = self.heap.pop().expect("peeked entry must pop");
            out.push(e.event);
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 5);
        q.schedule(Cycle(1), 1);
        q.schedule(Cycle(3), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle(9), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle(9)));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(10), "a");
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
        q.schedule(Cycle(4), "b");
        q.schedule(Cycle(4), "c");
        assert_eq!(q.pop(), Some((Cycle(4), "b")));
        q.schedule(Cycle(3), "d");
        assert_eq!(q.pop(), Some((Cycle(3), "d")));
        assert_eq!(q.pop(), Some((Cycle(4), "c")));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(8), "x");
        q.schedule(Cycle(3), "y");
        assert_eq!(q.peek(), Some((Cycle(3), &"y")));
        assert_eq!(q.peek(), Some((Cycle(3), &"y")), "peek is idempotent");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle(3), "y")));
        assert_eq!(q.peek(), Some((Cycle(8), &"x")));
    }

    #[test]
    fn same_cycle_batch_drain_matches_pop_order() {
        // The drained batch must be exactly what repeated pop() would
        // have delivered: FIFO within the cycle, later cycles untouched.
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (t, e) in [(4, 0), (2, 1), (2, 2), (9, 3), (2, 4)] {
            a.schedule(Cycle(t), e);
            b.schedule(Cycle(t), e);
        }
        let mut batch = Vec::new();
        let t0 = a.peek_time().unwrap();
        a.pop_at(t0, &mut batch);
        assert_eq!(batch, vec![1, 2, 4]);
        assert_eq!(a.len(), 2);
        let popped: Vec<_> = (0..3).map(|_| b.pop().unwrap().1).collect();
        assert_eq!(batch, popped);
        // Draining a cycle with no events is a no-op.
        batch.clear();
        a.pop_at(Cycle(3), &mut batch);
        assert!(batch.is_empty());
        assert_eq!(a.peek_time(), Some(Cycle(4)));
    }

    #[test]
    fn batch_drain_with_mid_batch_schedules_preserves_total_order() {
        // Events scheduled while a same-cycle batch is being processed
        // land *after* the already-queued events of that cycle in both
        // regimes (their seq is higher), so batch + rescheduled batch
        // equals the pop-one-at-a-time order.
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), "a");
        q.schedule(Cycle(5), "b");
        let mut order = Vec::new();
        let mut batch = Vec::new();
        q.pop_at(Cycle(5), &mut batch);
        for e in batch.drain(..) {
            order.push(e);
            if e == "a" {
                // Processing "a" schedules more same-cycle work.
                q.schedule(Cycle(5), "a2");
            }
        }
        q.pop_at(Cycle(5), &mut batch);
        order.append(&mut batch);
        assert_eq!(order, vec!["a", "b", "a2"]);
    }

    #[test]
    fn fifo_ordering_survives_heap_growth() {
        // Push far past the initial capacity so the heap reallocates
        // and sift operations shuffle the backing array; FIFO within
        // each cycle must survive.
        let mut q = EventQueue::with_capacity(4);
        let initial = q.capacity();
        for i in 0..10_000u32 {
            q.schedule(Cycle((i % 7) as u64), i);
        }
        assert!(q.capacity() > initial, "growth must have happened");
        let mut last: Option<(Cycle, u32)> = None;
        while let Some((t, e)) = q.pop() {
            if let Some((lt, le)) = last {
                assert!(t >= lt, "time order violated");
                if t == lt {
                    assert!(e > le, "FIFO violated within cycle {t:?}");
                }
            }
            last = Some((t, e));
        }
    }

    #[test]
    fn capacity_is_reusable_after_drain() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for round in 0..3u64 {
            for i in 0..64u32 {
                q.schedule(Cycle(round), i);
            }
            while q.pop().is_some() {}
            assert!(q.is_empty());
            assert_eq!(q.capacity(), cap, "drain must not shrink capacity");
        }
        q.reserve(128);
        assert!(q.capacity() >= 128);
    }
}
