//! Power-failure injection for crash-consistency experiments.
//!
//! A [`CrashSwitch`] arms a single power cut at a request-count boundary:
//! the runner polls it once per completed request and, on the firing
//! poll, drops all volatile state (mapping tables, flash registers, write
//! caches, pinned L2 lines) before running FTL recovery. The switch fires
//! exactly once — replaying past the crash point after recovery does not
//! re-trigger it.

/// A one-shot power-cut trigger armed at an operation count.
///
/// # Examples
///
/// ```
/// use zng_sim::CrashSwitch;
///
/// let mut s = CrashSwitch::at_ops(3);
/// assert!(!s.poll(1));
/// assert!(!s.poll(2));
/// assert!(s.poll(3), "fires at the armed count");
/// assert!(!s.poll(4), "and never again");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSwitch {
    at_ops: u64,
    fired: bool,
}

impl CrashSwitch {
    /// Arms a cut after `ops` completed operations. `ops == 0` fires on
    /// the first poll.
    pub fn at_ops(ops: u64) -> CrashSwitch {
        CrashSwitch {
            at_ops: ops,
            fired: false,
        }
    }

    /// A switch that never fires (the default, crash-free run).
    pub fn disarmed() -> CrashSwitch {
        CrashSwitch {
            at_ops: u64::MAX,
            fired: true,
        }
    }

    /// Polls with the current completed-operation count; returns `true`
    /// exactly once, when the armed count is first reached.
    pub fn poll(&mut self, ops: u64) -> bool {
        if self.fired || ops < self.at_ops {
            return false;
        }
        self.fired = true;
        true
    }

    /// Whether the cut has already happened.
    pub fn fired(&self) -> bool {
        self.fired && self.at_ops != u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_armed_count() {
        let mut s = CrashSwitch::at_ops(5);
        for ops in 0..5 {
            assert!(!s.poll(ops));
        }
        assert!(s.poll(5));
        assert!(s.fired());
        assert!(!s.poll(6));
        assert!(!s.poll(1_000));
    }

    #[test]
    fn fires_even_when_the_exact_count_is_skipped() {
        let mut s = CrashSwitch::at_ops(10);
        assert!(!s.poll(9));
        assert!(s.poll(11), "late poll past the boundary still fires");
        assert!(!s.poll(12));
    }

    #[test]
    fn zero_fires_immediately() {
        let mut s = CrashSwitch::at_ops(0);
        assert!(s.poll(0));
    }

    #[test]
    fn disarmed_never_fires() {
        let mut s = CrashSwitch::disarmed();
        for ops in 0..100 {
            assert!(!s.poll(ops));
        }
        assert!(!s.fired(), "a disarmed switch reports no crash");
    }
}
