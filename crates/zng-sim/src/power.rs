//! Power-failure injection for crash-consistency experiments.
//!
//! A [`CrashSwitch`] arms a single power cut at a request-count boundary:
//! the runner polls it once per completed request and, on the firing
//! poll, drops all volatile state (mapping tables, flash registers, write
//! caches, pinned L2 lines) before running FTL recovery. The switch fires
//! exactly once — replaying past the crash point after recovery does not
//! re-trigger it.

/// A one-shot power-cut trigger armed at an operation count.
///
/// # Examples
///
/// ```
/// use zng_sim::CrashSwitch;
///
/// let mut s = CrashSwitch::at_ops(3);
/// assert!(!s.poll(1));
/// assert!(!s.poll(2));
/// assert!(s.poll(3), "fires at the armed count");
/// assert!(!s.poll(4), "and never again");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSwitch {
    at_ops: u64,
    fired: bool,
}

impl CrashSwitch {
    /// Arms a cut after `ops` completed operations. `ops == 0` fires on
    /// the first poll.
    pub fn at_ops(ops: u64) -> CrashSwitch {
        CrashSwitch {
            at_ops: ops,
            fired: false,
        }
    }

    /// A switch that never fires (the default, crash-free run).
    pub fn disarmed() -> CrashSwitch {
        CrashSwitch {
            at_ops: u64::MAX,
            fired: true,
        }
    }

    /// Polls with the current completed-operation count; returns `true`
    /// exactly once, when the armed count is first reached.
    pub fn poll(&mut self, ops: u64) -> bool {
        if self.fired || ops < self.at_ops {
            return false;
        }
        self.fired = true;
        true
    }

    /// Whether the cut has already happened.
    pub fn fired(&self) -> bool {
        self.fired && self.at_ops != u64::MAX
    }
}

/// A recurring trigger firing every `every` completed operations — the
/// patrol-scrub cadence (and any other periodic background chore keyed
/// to request progress rather than wall time).
///
/// # Examples
///
/// ```
/// use zng_sim::PatrolTicker;
///
/// let mut t = PatrolTicker::every_ops(3);
/// assert!(!t.poll(1));
/// assert!(t.poll(3));
/// assert!(!t.poll(4));
/// assert!(t.poll(6), "re-arms after each firing");
/// assert_eq!(t.ticks(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatrolTicker {
    every: u64,
    next: u64,
    ticks: u64,
}

impl PatrolTicker {
    /// A ticker firing every `every` completed operations; `every == 0`
    /// never fires (disabled).
    pub fn every_ops(every: u64) -> PatrolTicker {
        PatrolTicker {
            every,
            next: every.max(1),
            ticks: 0,
        }
    }

    /// A ticker that never fires.
    pub fn disabled() -> PatrolTicker {
        PatrolTicker::every_ops(0)
    }

    /// Polls with the current completed-operation count; returns `true`
    /// when a period boundary has been reached, then re-arms one period
    /// past the poll (a late poll does not burst-fire the missed ticks).
    pub fn poll(&mut self, ops: u64) -> bool {
        if self.every == 0 || ops < self.next {
            return false;
        }
        self.next = ops + self.every;
        self.ticks += 1;
        true
    }

    /// Times the ticker has fired.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_armed_count() {
        let mut s = CrashSwitch::at_ops(5);
        for ops in 0..5 {
            assert!(!s.poll(ops));
        }
        assert!(s.poll(5));
        assert!(s.fired());
        assert!(!s.poll(6));
        assert!(!s.poll(1_000));
    }

    #[test]
    fn fires_even_when_the_exact_count_is_skipped() {
        let mut s = CrashSwitch::at_ops(10);
        assert!(!s.poll(9));
        assert!(s.poll(11), "late poll past the boundary still fires");
        assert!(!s.poll(12));
    }

    #[test]
    fn zero_fires_immediately() {
        let mut s = CrashSwitch::at_ops(0);
        assert!(s.poll(0));
    }

    #[test]
    fn disarmed_never_fires() {
        let mut s = CrashSwitch::disarmed();
        for ops in 0..100 {
            assert!(!s.poll(ops));
        }
        assert!(!s.fired(), "a disarmed switch reports no crash");
    }

    #[test]
    fn ticker_fires_every_period_without_bursting() {
        let mut t = PatrolTicker::every_ops(10);
        let mut fired = Vec::new();
        for ops in 0..35u64 {
            if t.poll(ops) {
                fired.push(ops);
            }
        }
        assert_eq!(fired, vec![10, 20, 30]);
        assert_eq!(t.ticks(), 3);
        // A late poll past several boundaries fires once, not thrice.
        let mut late = PatrolTicker::every_ops(10);
        assert!(late.poll(35));
        assert!(!late.poll(36));
        assert_eq!(late.ticks(), 1);
    }

    #[test]
    fn disabled_ticker_never_fires() {
        let mut t = PatrolTicker::disabled();
        for ops in 0..100 {
            assert!(!t.poll(ops));
        }
        assert_eq!(t.ticks(), 0);
    }
}
