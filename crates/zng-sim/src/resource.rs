//! Occupancy-based contention models.
//!
//! Shared hardware is modelled as a small pool of servers. A request
//! *reserves* a server for its service time; the reservation's end is the
//! request's departure time. Back-to-back reservations serialize, which is
//! exactly the queueing behaviour that makes, e.g., HybridGPU's single
//! request dispatcher or a 1 B ONFI bus a bottleneck.

use zng_types::Cycle;

/// A pool of identical servers with reservation semantics.
///
/// # Examples
///
/// A single-ported resource serializes:
///
/// ```
/// use zng_sim::Resource;
/// use zng_types::Cycle;
///
/// let mut r = Resource::new(1);
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
/// // Arrives at t=0 but the server is busy until 10.
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(20));
/// ```
///
/// A dual-ported resource overlaps two requests:
///
/// ```
/// use zng_sim::Resource;
/// use zng_types::Cycle;
///
/// let mut r = Resource::new(2);
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(20));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    /// Next-free time per server.
    servers: Vec<Cycle>,
    /// Total busy time accumulated across servers (for utilization).
    busy: Cycle,
    /// Number of completed reservations.
    served: u64,
}

impl Resource {
    /// Creates a resource with `ports` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Resource {
        assert!(ports > 0, "a resource needs at least one server");
        Resource {
            servers: vec![Cycle::ZERO; ports],
            busy: Cycle::ZERO,
            served: 0,
        }
    }

    /// Reserves the earliest-free server starting no earlier than `now` for
    /// `service` cycles and returns the completion time.
    pub fn acquire(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let slot = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .map(|(i, _)| i)
            .expect("resource has at least one server");
        let start = now.max(self.servers[slot]);
        let end = start + service;
        self.servers[slot] = end;
        self.busy += service;
        self.served += 1;
        end
    }

    /// The earliest time any server becomes free.
    pub fn earliest_free(&self) -> Cycle {
        self.servers
            .iter()
            .copied()
            .min()
            .expect("resource has at least one server")
    }

    /// Number of servers in the pool.
    pub fn ports(&self) -> usize {
        self.servers.len()
    }

    /// Completed reservations so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of capacity used up to `now` (0.0–1.0).
    ///
    /// Returns 0.0 before any time has elapsed.
    pub fn utilization(&self, now: Cycle) -> f64 {
        if now == Cycle::ZERO {
            return 0.0;
        }
        let cap = now.raw() as f64 * self.servers.len() as f64;
        (self.busy.raw() as f64 / cap).min(1.0)
    }

    /// Forgets all reservations (used between simulation phases).
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            *s = Cycle::ZERO;
        }
        self.busy = Cycle::ZERO;
        self.served = 0;
    }
}

/// A bandwidth-limited, fixed-latency transfer pipe (a bus, a NoC link,
/// a PCIe lane set, a flash channel).
///
/// Occupancy is `bytes / bytes_per_cycle`; the propagation `latency` is
/// pipelined (it delays the data but does not occupy the pipe).
///
/// # Examples
///
/// ```
/// use zng_sim::Link;
/// use zng_types::Cycle;
///
/// // An 8 B/cycle mesh link with 4-cycle hop latency.
/// let mut l = Link::new(8.0, Cycle(4));
/// // A 4 KB page occupies the link for 512 cycles, arriving at 516.
/// assert_eq!(l.transfer(Cycle(0), 4096), Cycle(516));
/// // The next page queues behind the first occupancy.
/// assert_eq!(l.transfer(Cycle(0), 4096), Cycle(1028));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    pipe: Resource,
    bytes_per_cycle: f64,
    latency: Cycle,
    bytes_moved: u64,
}

impl Link {
    /// Creates a link moving `bytes_per_cycle` with per-transfer `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Link {
        assert!(
            bytes_per_cycle > 0.0,
            "link bandwidth must be positive, got {bytes_per_cycle}"
        );
        Link {
            pipe: Resource::new(1),
            bytes_per_cycle,
            latency,
            bytes_moved: 0,
        }
    }

    /// Reserves the pipe for `bytes` starting no earlier than `now`;
    /// returns the time the last byte arrives.
    pub fn transfer(&mut self, now: Cycle, bytes: usize) -> Cycle {
        let occupancy = Cycle((bytes as f64 / self.bytes_per_cycle).ceil() as u64);
        self.bytes_moved += bytes as u64;
        self.pipe.acquire(now, occupancy) + self.latency
    }

    /// Total bytes pushed through this link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// The link's configured bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// The link's propagation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Fraction of link capacity used up to `now`.
    pub fn utilization(&self, now: Cycle) -> f64 {
        self.pipe.utilization(now)
    }

    /// Forgets all reservations and counters.
    pub fn reset(&mut self) {
        self.pipe.reset();
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut r = Resource::new(1);
        let a = r.acquire(Cycle(0), Cycle(5));
        let b = r.acquire(Cycle(2), Cycle(5));
        assert_eq!(a, Cycle(5));
        assert_eq!(b, Cycle(10)); // queued behind a
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn idle_gap_is_not_reserved() {
        let mut r = Resource::new(1);
        r.acquire(Cycle(0), Cycle(5));
        // Arrives after the first job finished: starts immediately.
        assert_eq!(r.acquire(Cycle(100), Cycle(5)), Cycle(105));
    }

    #[test]
    fn multi_port_overlaps() {
        let mut r = Resource::new(3);
        for _ in 0..3 {
            assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
        }
        assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(20));
        assert_eq!(r.earliest_free(), Cycle(10));
    }

    #[test]
    fn utilization_bounds() {
        let mut r = Resource::new(2);
        assert_eq!(r.utilization(Cycle::ZERO), 0.0);
        r.acquire(Cycle(0), Cycle(10));
        // 10 busy cycles over 2 servers * 10 cycles = 0.5.
        assert!((r.utilization(Cycle(10)) - 0.5).abs() < 1e-12);
        r.acquire(Cycle(0), Cycle(10));
        assert!((r.utilization(Cycle(10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new(1);
        r.acquire(Cycle(0), Cycle(50));
        r.reset();
        assert_eq!(r.earliest_free(), Cycle::ZERO);
        assert_eq!(r.served(), 0);
        assert_eq!(r.acquire(Cycle(0), Cycle(1)), Cycle(1));
    }

    #[test]
    fn link_bandwidth_math() {
        // 1 B/cycle ONFI-like bus: a 4 KB page takes 4096 cycles.
        let mut bus = Link::new(1.0, Cycle::ZERO);
        assert_eq!(bus.transfer(Cycle(0), 4096), Cycle(4096));
        assert_eq!(bus.bytes_moved(), 4096);
        // An 8 B/cycle link is 8x faster.
        let mut mesh = Link::new(8.0, Cycle::ZERO);
        assert_eq!(mesh.transfer(Cycle(0), 4096), Cycle(512));
    }

    #[test]
    fn link_latency_is_pipelined() {
        let mut l = Link::new(128.0, Cycle(10));
        let first = l.transfer(Cycle(0), 128); // occupancy 1, arrive 11
        let second = l.transfer(Cycle(0), 128); // starts at 1, arrive 12
        assert_eq!(first, Cycle(11));
        assert_eq!(second, Cycle(12));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_ports_rejected() {
        let _ = Resource::new(0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0.0, Cycle::ZERO);
    }
}
