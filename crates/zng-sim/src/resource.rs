//! Occupancy-based contention models.
//!
//! Shared hardware is modelled as a small pool of servers. A request
//! *reserves* a server for its service time; the reservation's end is the
//! request's departure time. Back-to-back reservations serialize, which is
//! exactly the queueing behaviour that makes, e.g., HybridGPU's single
//! request dispatcher or a 1 B ONFI bus a bottleneck.

use zng_types::Cycle;

use crate::stats::Histogram;

/// The outcome of a bounded admission attempt ([`Resource::try_acquire`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was admitted; it departs (service completes) at the
    /// given cycle.
    Admitted(Cycle),
    /// The queue was full; nothing was reserved.
    Rejected {
        /// Earliest cycle at which a slot is guaranteed free, assuming no
        /// competing arrivals in between. Always strictly after `now`.
        retry_at: Cycle,
    },
}

impl Admission {
    /// The departure time, or `None` if rejected.
    pub fn departure(self) -> Option<Cycle> {
        match self {
            Admission::Admitted(done) => Some(done),
            Admission::Rejected { .. } => None,
        }
    }

    /// Whether the request was admitted.
    pub fn is_admitted(self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// A pool of identical servers with reservation semantics.
///
/// # Examples
///
/// A single-ported resource serializes:
///
/// ```
/// use zng_sim::Resource;
/// use zng_types::Cycle;
///
/// let mut r = Resource::new(1);
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
/// // Arrives at t=0 but the server is busy until 10.
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(20));
/// ```
///
/// A dual-ported resource overlaps two requests:
///
/// ```
/// use zng_sim::Resource;
/// use zng_types::Cycle;
///
/// let mut r = Resource::new(2);
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
/// assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(20));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    /// Next-free time per server.
    servers: Vec<Cycle>,
    /// Total busy time accumulated across servers (for utilization).
    busy: Cycle,
    /// Number of completed reservations.
    served: u64,
    /// Maximum *waiting* requests (in-system beyond the server count)
    /// tolerated by [`Resource::try_acquire`]; `None` = unbounded.
    queue_depth: Option<usize>,
    /// Departure times of requests admitted through `try_acquire` that
    /// may still be in the system. Pruned lazily against `now`.
    pending: Vec<Cycle>,
    /// Admissions refused because the queue was full.
    rejected: u64,
    /// Wait time (admission to service start) of admitted requests.
    wait_hist: Histogram,
    /// In-system population observed at each admission (including the
    /// request being admitted).
    occupancy_hist: Histogram,
}

impl Resource {
    /// Creates a resource with `ports` parallel servers and an unbounded
    /// queue.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Resource {
        assert!(ports > 0, "a resource needs at least one server");
        Resource {
            servers: vec![Cycle::ZERO; ports],
            busy: Cycle::ZERO,
            served: 0,
            queue_depth: None,
            pending: Vec::new(),
            rejected: 0,
            wait_hist: Histogram::new(),
            occupancy_hist: Histogram::new(),
        }
    }

    /// Creates a resource whose [`Resource::try_acquire`] admits at most
    /// `depth` waiting requests beyond the `ports` in service.
    pub fn bounded(ports: usize, depth: usize) -> Resource {
        let mut r = Resource::new(ports);
        r.queue_depth = Some(depth);
        r
    }

    /// Changes the admission bound (`None` = unbounded). Takes effect on
    /// the next [`Resource::try_acquire`]; in-flight reservations keep
    /// their departure times.
    pub fn set_queue_depth(&mut self, depth: Option<usize>) {
        self.queue_depth = depth;
    }

    /// The configured admission bound, if any.
    pub fn queue_depth(&self) -> Option<usize> {
        self.queue_depth
    }

    /// Reserves the earliest-free server starting no earlier than `now` for
    /// `service` cycles and returns the completion time.
    pub fn acquire(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let slot = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .map(|(i, _)| i)
            .expect("resource has at least one server");
        let start = now.max(self.servers[slot]);
        let end = start + service;
        self.servers[slot] = end;
        self.busy += service;
        self.served += 1;
        end
    }

    /// Bounded admission: like [`Resource::acquire`], but refuses the
    /// reservation when more than the configured queue depth of admitted
    /// requests are still waiting for a server at `now`.
    ///
    /// On admission the wait time (service start minus `now`) and the
    /// in-system population are recorded in the histograms. A rejection
    /// reserves nothing and reports the earliest cycle at which a queue
    /// slot frees; retrying then is guaranteed to be admitted if no other
    /// request arrives in between. With no depth configured this never
    /// rejects (it is `acquire` plus bookkeeping).
    pub fn try_acquire(&mut self, now: Cycle, service: Cycle) -> Admission {
        self.pending.retain(|&done| done > now);
        if let Some(depth) = self.queue_depth {
            if self.pending.len() >= self.servers.len() + depth {
                self.rejected += 1;
                let soonest = self
                    .pending
                    .iter()
                    .copied()
                    .min()
                    .expect("a saturated queue has pending departures");
                return Admission::Rejected {
                    retry_at: soonest.max(now + Cycle(1)),
                };
            }
        }
        let done = self.acquire(now, service);
        let start = done.saturating_since(service);
        self.wait_hist.record(start.saturating_since(now).raw());
        self.pending.push(done);
        self.occupancy_hist.record(self.pending.len() as u64);
        Admission::Admitted(done)
    }

    /// Requests admitted via [`Resource::try_acquire`] still in the system
    /// at `now` (waiting or in service).
    pub fn in_system(&self, now: Cycle) -> usize {
        self.pending.iter().filter(|&&done| done > now).count()
    }

    /// Admissions refused by [`Resource::try_acquire`] so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Wait times (cycles between arrival and service start) of admitted
    /// requests.
    pub fn wait_histogram(&self) -> &Histogram {
        &self.wait_hist
    }

    /// In-system population sampled at each admission.
    pub fn occupancy_histogram(&self) -> &Histogram {
        &self.occupancy_hist
    }

    /// The earliest time any server becomes free.
    pub fn earliest_free(&self) -> Cycle {
        self.servers
            .iter()
            .copied()
            .min()
            .expect("resource has at least one server")
    }

    /// Number of servers in the pool.
    pub fn ports(&self) -> usize {
        self.servers.len()
    }

    /// Completed reservations so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of capacity used up to `now` (0.0–1.0).
    ///
    /// Returns 0.0 before any time has elapsed.
    pub fn utilization(&self, now: Cycle) -> f64 {
        if now == Cycle::ZERO {
            return 0.0;
        }
        let cap = now.raw() as f64 * self.servers.len() as f64;
        (self.busy.raw() as f64 / cap).min(1.0)
    }

    /// Forgets all reservations, admissions and statistics (used between
    /// simulation phases). The configured queue depth is kept.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            *s = Cycle::ZERO;
        }
        self.busy = Cycle::ZERO;
        self.served = 0;
        self.pending.clear();
        self.rejected = 0;
        self.wait_hist = Histogram::new();
        self.occupancy_hist = Histogram::new();
    }
}

/// A bandwidth-limited, fixed-latency transfer pipe (a bus, a NoC link,
/// a PCIe lane set, a flash channel).
///
/// Occupancy is `bytes / bytes_per_cycle`; the propagation `latency` is
/// pipelined (it delays the data but does not occupy the pipe).
///
/// # Examples
///
/// ```
/// use zng_sim::Link;
/// use zng_types::Cycle;
///
/// // An 8 B/cycle mesh link with 4-cycle hop latency.
/// let mut l = Link::new(8.0, Cycle(4));
/// // A 4 KB page occupies the link for 512 cycles, arriving at 516.
/// assert_eq!(l.transfer(Cycle(0), 4096), Cycle(516));
/// // The next page queues behind the first occupancy.
/// assert_eq!(l.transfer(Cycle(0), 4096), Cycle(1028));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    pipe: Resource,
    bytes_per_cycle: f64,
    latency: Cycle,
    bytes_moved: u64,
}

impl Link {
    /// Creates a link moving `bytes_per_cycle` with per-transfer `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Link {
        assert!(
            bytes_per_cycle > 0.0,
            "link bandwidth must be positive, got {bytes_per_cycle}"
        );
        Link {
            pipe: Resource::new(1),
            bytes_per_cycle,
            latency,
            bytes_moved: 0,
        }
    }

    /// Reserves the pipe for `bytes` starting no earlier than `now`;
    /// returns the time the last byte arrives.
    pub fn transfer(&mut self, now: Cycle, bytes: usize) -> Cycle {
        let occupancy = Cycle((bytes as f64 / self.bytes_per_cycle).ceil() as u64);
        self.bytes_moved += bytes as u64;
        self.pipe.acquire(now, occupancy) + self.latency
    }

    /// Bounded injection: like [`Link::transfer`], but rejects when the
    /// configured number of transfers is already queued on the pipe.
    /// Rejections move no bytes. With no depth configured this never
    /// rejects.
    pub fn try_transfer(&mut self, now: Cycle, bytes: usize) -> Admission {
        let occupancy = Cycle((bytes as f64 / self.bytes_per_cycle).ceil() as u64);
        match self.pipe.try_acquire(now, occupancy) {
            Admission::Admitted(done) => {
                self.bytes_moved += bytes as u64;
                Admission::Admitted(done + self.latency)
            }
            rejected => rejected,
        }
    }

    /// Bounds the number of transfers queued on the pipe (`None` =
    /// unbounded; only [`Link::try_transfer`] enforces the bound).
    pub fn set_queue_depth(&mut self, depth: Option<usize>) {
        self.pipe.set_queue_depth(depth);
    }

    /// Injections refused by [`Link::try_transfer`] so far.
    pub fn rejected(&self) -> u64 {
        self.pipe.rejected()
    }

    /// Wait times of admitted transfers (queueing delay before the pipe).
    pub fn wait_histogram(&self) -> &Histogram {
        self.pipe.wait_histogram()
    }

    /// In-flight transfer population sampled at each admission.
    pub fn occupancy_histogram(&self) -> &Histogram {
        self.pipe.occupancy_histogram()
    }

    /// Total bytes pushed through this link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// The link's configured bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// The link's propagation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Fraction of link capacity used up to `now`.
    pub fn utilization(&self, now: Cycle) -> f64 {
        self.pipe.utilization(now)
    }

    /// Forgets all reservations and counters.
    pub fn reset(&mut self) {
        self.pipe.reset();
        self.bytes_moved = 0;
    }
}

/// A finite admission queue tracking in-flight requests by departure time.
///
/// Unlike [`Resource`], an `AdmissionQueue` does not model service — the
/// caller computes completion times through whatever pipeline it guards
/// (a flash channel controller, an SSD dispatcher) and reports them back
/// via [`AdmissionQueue::note_inflight`]. The queue only decides whether a
/// new request may enter, bounding the in-flight population.
///
/// With no depth configured (the default), [`AdmissionQueue::try_admit`]
/// always succeeds and performs no tracking, so unbounded mode costs
/// nothing and perturbs nothing.
#[derive(Debug, Default, Clone)]
pub struct AdmissionQueue {
    depth: Option<usize>,
    inflight: Vec<Cycle>,
    admitted: u64,
    rejected: u64,
    occupancy_hist: Histogram,
}

impl AdmissionQueue {
    /// Creates an unbounded (no-op) queue.
    pub fn new() -> AdmissionQueue {
        AdmissionQueue::default()
    }

    /// Sets the in-flight bound (`None` = unbounded). Clearing the bound
    /// also drops tracked in-flight entries.
    pub fn set_depth(&mut self, depth: Option<usize>) {
        self.depth = depth;
        if depth.is_none() {
            self.inflight.clear();
        }
    }

    /// The configured bound, if any.
    pub fn depth(&self) -> Option<usize> {
        self.depth
    }

    /// Asks to admit one request at `now`. On `Err(retry_at)` the queue is
    /// full; retrying at `retry_at` is guaranteed to succeed if no other
    /// request is admitted in between.
    pub fn try_admit(&mut self, now: Cycle) -> Result<(), Cycle> {
        let Some(depth) = self.depth else {
            return Ok(());
        };
        self.inflight.retain(|&done| done > now);
        if self.inflight.len() >= depth {
            self.rejected += 1;
            let soonest = self
                .inflight
                .iter()
                .copied()
                .min()
                .expect("a full queue has in-flight entries");
            return Err(soonest.max(now + Cycle(1)));
        }
        self.admitted += 1;
        self.occupancy_hist.record(self.inflight.len() as u64 + 1);
        Ok(())
    }

    /// Reports the completion time of the request most recently admitted.
    /// No-op in unbounded mode.
    pub fn note_inflight(&mut self, done: Cycle) {
        if self.depth.is_some() {
            self.inflight.push(done);
        }
    }

    /// Requests currently tracked as in flight at `now`.
    pub fn in_flight(&self, now: Cycle) -> usize {
        self.inflight.iter().filter(|&&done| done > now).count()
    }

    /// Requests admitted so far (bounded mode only).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// In-flight population sampled at each admission (including the
    /// admitted request).
    pub fn occupancy_histogram(&self) -> &Histogram {
        &self.occupancy_hist
    }

    /// Largest in-flight population ever admitted to.
    pub fn max_occupancy(&self) -> u64 {
        self.occupancy_hist.max()
    }

    /// Forgets in-flight entries and statistics; keeps the bound.
    pub fn reset(&mut self) {
        self.inflight.clear();
        self.admitted = 0;
        self.rejected = 0;
        self.occupancy_hist = Histogram::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut r = Resource::new(1);
        let a = r.acquire(Cycle(0), Cycle(5));
        let b = r.acquire(Cycle(2), Cycle(5));
        assert_eq!(a, Cycle(5));
        assert_eq!(b, Cycle(10)); // queued behind a
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn idle_gap_is_not_reserved() {
        let mut r = Resource::new(1);
        r.acquire(Cycle(0), Cycle(5));
        // Arrives after the first job finished: starts immediately.
        assert_eq!(r.acquire(Cycle(100), Cycle(5)), Cycle(105));
    }

    #[test]
    fn multi_port_overlaps() {
        let mut r = Resource::new(3);
        for _ in 0..3 {
            assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(10));
        }
        assert_eq!(r.acquire(Cycle(0), Cycle(10)), Cycle(20));
        assert_eq!(r.earliest_free(), Cycle(10));
    }

    #[test]
    fn utilization_bounds() {
        let mut r = Resource::new(2);
        assert_eq!(r.utilization(Cycle::ZERO), 0.0);
        r.acquire(Cycle(0), Cycle(10));
        // 10 busy cycles over 2 servers * 10 cycles = 0.5.
        assert!((r.utilization(Cycle(10)) - 0.5).abs() < 1e-12);
        r.acquire(Cycle(0), Cycle(10));
        assert!((r.utilization(Cycle(10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new(1);
        r.acquire(Cycle(0), Cycle(50));
        r.reset();
        assert_eq!(r.earliest_free(), Cycle::ZERO);
        assert_eq!(r.served(), 0);
        assert_eq!(r.acquire(Cycle(0), Cycle(1)), Cycle(1));
    }

    #[test]
    fn link_bandwidth_math() {
        // 1 B/cycle ONFI-like bus: a 4 KB page takes 4096 cycles.
        let mut bus = Link::new(1.0, Cycle::ZERO);
        assert_eq!(bus.transfer(Cycle(0), 4096), Cycle(4096));
        assert_eq!(bus.bytes_moved(), 4096);
        // An 8 B/cycle link is 8x faster.
        let mut mesh = Link::new(8.0, Cycle::ZERO);
        assert_eq!(mesh.transfer(Cycle(0), 4096), Cycle(512));
    }

    #[test]
    fn link_latency_is_pipelined() {
        let mut l = Link::new(128.0, Cycle(10));
        let first = l.transfer(Cycle(0), 128); // occupancy 1, arrive 11
        let second = l.transfer(Cycle(0), 128); // starts at 1, arrive 12
        assert_eq!(first, Cycle(11));
        assert_eq!(second, Cycle(12));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_ports_rejected() {
        let _ = Resource::new(0);
    }

    #[test]
    fn utilization_is_zero_after_reset() {
        let mut r = Resource::new(2);
        r.acquire(Cycle(0), Cycle(100));
        assert!(r.utilization(Cycle(100)) > 0.0);
        r.reset();
        assert_eq!(r.utilization(Cycle(100)), 0.0, "busy time forgotten");
        assert_eq!(r.utilization(Cycle::ZERO), 0.0, "and t=0 stays defined");
    }

    #[test]
    fn zero_service_time_reservations() {
        let mut r = Resource::new(1);
        // A zero-cycle reservation departs when it starts and holds nothing.
        assert_eq!(r.acquire(Cycle(5), Cycle::ZERO), Cycle(5));
        assert_eq!(r.acquire(Cycle(5), Cycle(10)), Cycle(15));
        assert_eq!(r.served(), 2);
        assert_eq!(r.utilization(Cycle(15)), 10.0 / 15.0);
        // Bounded mode: zero-service requests never occupy the queue.
        let mut b = Resource::bounded(1, 0);
        for _ in 0..3 {
            assert_eq!(
                b.try_acquire(Cycle(5), Cycle::ZERO),
                Admission::Admitted(Cycle(5))
            );
        }
        assert_eq!(b.rejected(), 0);
    }

    #[test]
    fn bounded_resource_rejects_beyond_depth() {
        // 1 server + depth 2: the third concurrent request is refused.
        let mut r = Resource::bounded(1, 2);
        assert_eq!(
            r.try_acquire(Cycle(0), Cycle(10)),
            Admission::Admitted(Cycle(10))
        );
        assert_eq!(
            r.try_acquire(Cycle(0), Cycle(10)),
            Admission::Admitted(Cycle(20))
        );
        assert_eq!(
            r.try_acquire(Cycle(0), Cycle(10)),
            Admission::Admitted(Cycle(30))
        );
        let rej = r.try_acquire(Cycle(0), Cycle(10));
        assert_eq!(
            rej,
            Admission::Rejected {
                retry_at: Cycle(10)
            }
        );
        assert!(!rej.is_admitted());
        assert_eq!(rej.departure(), None);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.in_system(Cycle(0)), 3);
        // Retrying at the hinted time succeeds.
        assert!(r.try_acquire(Cycle(10), Cycle(10)).is_admitted());
        assert_eq!(r.occupancy_histogram().max(), 3, "in-system <= ports+depth");
    }

    #[test]
    fn bounded_resource_retry_at_is_strictly_future() {
        let mut r = Resource::bounded(1, 0);
        // Zero-service admission departs at now; it is pruned, so the
        // queue is empty again and admission succeeds. Force saturation
        // with a real service time instead.
        r.try_acquire(Cycle(0), Cycle(1));
        match r.try_acquire(Cycle(0), Cycle(1)) {
            Admission::Rejected { retry_at } => assert!(retry_at > Cycle(0)),
            a => panic!("expected rejection, got {a:?}"),
        }
    }

    #[test]
    fn unbounded_try_acquire_matches_acquire() {
        let mut a = Resource::new(2);
        let mut b = Resource::new(2);
        for (now, svc) in [(0u64, 7u64), (3, 5), (4, 9), (20, 1)] {
            let x = a.acquire(Cycle(now), Cycle(svc));
            let y = b.try_acquire(Cycle(now), Cycle(svc));
            assert_eq!(y, Admission::Admitted(x));
        }
        assert_eq!(b.rejected(), 0);
        assert_eq!(b.wait_histogram().count(), 4);
    }

    #[test]
    fn wait_histogram_records_queueing_delay() {
        let mut r = Resource::bounded(1, 8);
        r.try_acquire(Cycle(0), Cycle(10)); // starts at 0: wait 0
        r.try_acquire(Cycle(0), Cycle(10)); // starts at 10: wait 10
        r.try_acquire(Cycle(0), Cycle(10)); // starts at 20: wait 20
        let h = r.wait_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 20);
        assert_eq!(h.sum(), 30);
    }

    #[test]
    fn reset_clears_bounded_state_but_keeps_depth() {
        let mut r = Resource::bounded(1, 0);
        r.try_acquire(Cycle(0), Cycle(100));
        r.try_acquire(Cycle(0), Cycle(100));
        assert_eq!(r.rejected(), 1);
        r.reset();
        assert_eq!(r.rejected(), 0);
        assert_eq!(r.in_system(Cycle(0)), 0);
        assert_eq!(r.queue_depth(), Some(0));
        assert!(r.try_acquire(Cycle(0), Cycle(1)).is_admitted());
    }

    #[test]
    fn link_try_transfer_bounds_injection() {
        let mut l = Link::new(8.0, Cycle(4));
        l.set_queue_depth(Some(0)); // only the transfer in service
        let first = l.try_transfer(Cycle(0), 4096);
        assert_eq!(first, Admission::Admitted(Cycle(516)));
        let second = l.try_transfer(Cycle(0), 4096);
        // Pipe busy until 512 (latency is pipelined, not queued).
        assert_eq!(
            second,
            Admission::Rejected {
                retry_at: Cycle(512)
            }
        );
        assert_eq!(l.rejected(), 1);
        assert_eq!(l.bytes_moved(), 4096, "rejected transfer moved no bytes");
        assert!(l.try_transfer(Cycle(512), 4096).is_admitted());
        assert!(l.occupancy_histogram().max() <= 1);
    }

    #[test]
    fn admission_queue_unbounded_is_a_noop() {
        let mut q = AdmissionQueue::new();
        for _ in 0..100 {
            assert_eq!(q.try_admit(Cycle(0)), Ok(()));
            q.note_inflight(Cycle(1_000_000));
        }
        assert_eq!(q.in_flight(Cycle(0)), 0, "no tracking without a bound");
        assert_eq!(q.admitted(), 0);
        assert_eq!(q.rejected(), 0);
    }

    #[test]
    fn admission_queue_enforces_depth() {
        let mut q = AdmissionQueue::new();
        q.set_depth(Some(2));
        assert_eq!(q.try_admit(Cycle(0)), Ok(()));
        q.note_inflight(Cycle(50));
        assert_eq!(q.try_admit(Cycle(0)), Ok(()));
        q.note_inflight(Cycle(80));
        assert_eq!(q.try_admit(Cycle(0)), Err(Cycle(50)));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.in_flight(Cycle(0)), 2);
        // At the hinted time the earliest departure has left.
        assert_eq!(q.try_admit(Cycle(50)), Ok(()));
        assert_eq!(q.max_occupancy(), 2);
        q.reset();
        assert_eq!(q.depth(), Some(2));
        assert_eq!(q.admitted(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0.0, Cycle::ZERO);
    }
}
