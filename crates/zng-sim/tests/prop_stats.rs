//! Property tests for the statistics primitives.

use proptest::prelude::*;
use zng_sim::{Histogram, Ratio, TimeSeries};
use zng_types::Cycle;

proptest! {
    #[test]
    fn histogram_moments_consistent(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = h.mean();
        let lo = *values.iter().min().unwrap() as f64;
        let hi = h.max() as f64;
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        // Percentiles are monotone in p.
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= h.max());
    }

    #[test]
    fn ratio_is_bounded(outcomes in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut r = Ratio::default();
        for &o in &outcomes {
            r.record(o);
        }
        prop_assert!(r.value() >= 0.0 && r.value() <= 1.0);
        prop_assert_eq!(r.total() as usize, outcomes.len());
        prop_assert_eq!(r.hits() as usize, outcomes.iter().filter(|&&b| b).count());
    }

    #[test]
    fn time_series_conserves_events(
        events in prop::collection::vec((0u64..10_000, 1u64..5), 0..200),
        interval in 1u64..500,
    ) {
        let mut ts = TimeSeries::new(Cycle(interval));
        let mut total = 0u64;
        for &(at, w) in &events {
            ts.record(Cycle(at), w);
            total += w;
        }
        prop_assert_eq!(ts.samples().iter().sum::<u64>(), total);
        // Every event landed in the right bucket.
        for (start, _) in ts.iter() {
            prop_assert_eq!(start.raw() % interval, 0);
        }
    }
}
