//! Device-lifetime endurance management, end to end.
//!
//! 1. **Healthy media** — endurance on with a background refresh step
//!    every 25 requests: array senses charge per-block read-disturb
//!    counters, the wear histogram is reported, and the scheduler ticks
//!    alongside the workload without touching its results.
//! 2. **End of life** — the same churn against worn-out media (erases
//!    fail, blocks retire, the spare pool drains): instead of the run
//!    dying on the `DeviceWornOut` cliff, the device takes a *capacity
//!    step* — mapped data stays readable, later writes are refused and
//!    counted, and the workload completes.
//!
//! ```text
//! cargo run --release --example lifetime_refresh
//! ```

use zng::{EnduranceConfig, Experiment, FaultConfig, PlatformKind, SimConfig, Table, TraceParams};

fn main() -> zng::Result<()> {
    let mix = ["back"];

    // Healthy media: wear tracking + refresh scheduler on.
    let mut cfg = SimConfig::tiny();
    cfg.endurance = EnduranceConfig::on(25);
    let mut exp = Experiment::quick()
        .with_config(cfg)
        .with_params(TraceParams::tiny());
    let r = exp.run(PlatformKind::ZngBase, &mix)?;
    let e = r.endurance.expect("endurance was on");

    let mut t = Table::new(vec!["endurance metric".into(), "value".into()]);
    t.row(vec!["refresh ticks".into(), e.refresh_ticks.to_string()]);
    t.row(vec!["refreshes".into(), e.refreshes.to_string()]);
    t.row(vec!["disturb reads".into(), e.disturb_reads.to_string()]);
    t.row(vec![
        "wear min/mean/max".into(),
        format!("{:.6}/{:.6}/{:.6}", e.wear_min, e.wear_mean, e.wear_max),
    ]);
    t.row(vec!["wear spread".into(), format!("{:.2}", e.wear_spread)]);
    t.print("healthy media: the scheduler rides along");

    assert!(e.refresh_ticks > 0, "the scheduler must tick");
    assert!(e.disturb_reads > 0, "array senses must charge disturb");
    assert_eq!(e.capacity_steps, 0, "healthy media never degrades");

    // End of life: worn media shrinks the pool out from under the same
    // churn; the cliff becomes a capacity step.
    let mut cfg = SimConfig::tiny();
    cfg.fault = FaultConfig::end_of_life();
    cfg.flash.blocks_per_plane = 8;
    cfg.endurance.enabled = true;
    let mut exp = Experiment::quick()
        .with_config(cfg)
        .with_params(TraceParams {
            total_warps: 4,
            mem_ops_per_warp: 4_000,
            footprint_pages: 32,
            seed: 9,
        });
    let r = exp.run(PlatformKind::ZngBase, &mix)?;
    let e = r.endurance.expect("endurance was on");

    println!();
    let mut t = Table::new(vec!["end-of-life metric".into(), "value".into()]);
    t.row(vec!["capacity steps".into(), e.capacity_steps.to_string()]);
    t.row(vec!["writes refused".into(), e.writes_refused.to_string()]);
    t.row(vec!["blocks retired".into(), r.blocks_retired.to_string()]);
    t.row(vec!["requests completed".into(), r.requests.to_string()]);
    t.print("end of life: the cliff becomes a capacity step");

    assert!(e.capacity_steps >= 1, "the pool must exhaust: {e:?}");
    assert!(e.writes_refused > 0, "refused writes are counted: {e:?}");
    assert!(r.blocks_retired > 0, "worn blocks must retire");

    println!();
    println!(
        "the run completed read-only: {} requests in {} cycles \
         (no DeviceWornOut abort)",
        r.requests,
        r.cycles.raw(),
    );
    Ok(())
}
