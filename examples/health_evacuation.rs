//! Predictive die-health monitoring, end to end.
//!
//! A die starts failing ~200k cycles into a read-heavy betweenness run
//! and dies outright at 14M cycles — mid-workload.
//!
//! 1. **Monitor on** (`--health --evacuate` in the CLI): the health
//!    tick flags the die while it is merely noisy, quarantines it,
//!    drains its live pages onto healthy spares, and fences it when it
//!    dies. The run completes with *zero* reads landing on dead
//!    silicon.
//! 2. **Monitor off** (full mode only): RAIN keeps the same run alive,
//!    but every post-death read of data stranded on the corpse pays a
//!    dead-die sense plus a stripe reconstruction.
//!
//! ```text
//! cargo run --release --example health_evacuation
//! ```
//!
//! `ZNG_QUICK=1` runs only the monitored half (the smoke CI lane).

use zng::{
    DegradingDie, Experiment, FaultConfig, HealthConfig, PlatformKind, RedundancyConfig, SimConfig,
    Table, TraceParams,
};

fn main() -> zng::Result<()> {
    let mix = ["betw"];
    let quick = std::env::var_os("ZNG_QUICK").is_some();

    let config = |monitored: bool| {
        let mut cfg = SimConfig::tiny();
        cfg.fault = FaultConfig::none().with_degrading(DegradingDie {
            channel: 0,
            die: 0,
            onset: 200_000,
            death: 14_000_000,
        });
        // RAIN reports dead-die traffic and keeps the unmonitored run
        // readable after the die drops.
        cfg.redundancy = RedundancyConfig::rain(0);
        if monitored {
            cfg.health = HealthConfig::on(3);
            cfg.health.window = 16;
            cfg.health.suspect_threshold = 0.02;
            cfg.health.evacuate = true;
        }
        cfg
    };
    // A footprint larger than the flash buffer keeps reads hitting the
    // array all the way through the post-death tail of the run.
    let run = |monitored: bool| {
        Experiment::quick()
            .with_config(config(monitored))
            .with_params(TraceParams {
                total_warps: 8,
                mem_ops_per_warp: 2_000,
                footprint_pages: 256,
                seed: 9,
            })
            .run(PlatformKind::ZngBase, &mix)
    };

    // Monitor on: flag early, evacuate, fence — and never touch the
    // corpse.
    let r = run(true)?;
    let h = r.health.expect("health was on");
    let rd = r.redundancy.expect("redundancy was on");

    let mut t = Table::new(vec!["health metric".into(), "value".into()]);
    t.row(vec!["monitor ticks".into(), h.health_ticks.to_string()]);
    t.row(vec![
        "suspects flagged".into(),
        h.suspects_flagged.to_string(),
    ]);
    t.row(vec![
        "pages evacuated".into(),
        h.pages_evacuated.to_string(),
    ]);
    t.row(vec![
        "evacuations completed".into(),
        h.evacuations_completed.to_string(),
    ]);
    t.row(vec![
        "dead dies fenced".into(),
        h.dead_dies_fenced.to_string(),
    ]);
    t.row(vec!["dead-die reads".into(), rd.dead_die_reads.to_string()]);
    t.print("monitor on: quarantine, evacuate, fence");

    assert!(h.health_ticks > 0, "the monitor must tick: {h:?}");
    assert!(
        h.suspects_flagged >= 1,
        "the dying die must be flagged: {h:?}"
    );
    assert!(h.pages_evacuated > 0, "live pages must move off it: {h:?}");
    assert!(h.evacuations_completed >= 1, "the drain must finish: {h:?}");
    assert_eq!(h.dead_dies_fenced, 1, "the die died mid-run: {h:?}");
    assert_eq!(
        rd.dead_die_reads, 0,
        "evacuation beat death: no read may touch dead silicon"
    );

    if quick {
        println!();
        println!("ZNG_QUICK=1: skipping the unmonitored contrast run");
        return Ok(());
    }

    // Monitor off: the same decline, survived only by paying the
    // reconstruction fan-out on every read of stranded data.
    let r_off = run(false)?;
    let rd_off = r_off.redundancy.expect("redundancy was on");

    println!();
    let mut t = Table::new(vec!["unmonitored metric".into(), "value".into()]);
    t.row(vec![
        "dead-die reads".into(),
        rd_off.dead_die_reads.to_string(),
    ]);
    t.row(vec![
        "stripe reconstructions".into(),
        rd_off.reconstructions.to_string(),
    ]);
    t.row(vec![
        "requests completed".into(),
        r_off.requests.to_string(),
    ]);
    t.print("monitor off: reads land on the corpse");

    assert!(r_off.health.is_none(), "no monitor, no summary");
    assert!(
        rd_off.dead_die_reads > 0,
        "without the monitor the dead die is still read: {rd_off:?}"
    );
    assert!(
        rd_off.reconstructions > 0,
        "those reads pay the stripe fan-out: {rd_off:?}"
    );

    println!();
    println!(
        "pre-emptive evacuation turned {} dead-die reads (plus {} \
         reconstructions) into zero",
        rd_off.dead_die_reads, rd_off.reconstructions,
    );
    Ok(())
}
