//! Diagnostic probe (not part of the paper's figures): single-app runs
//! with detailed counters, used to calibrate the simulator.

use zng::{Experiment, PlatformKind, TraceParams};

fn main() -> zng::Result<()> {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let wl = names.first().map(String::as_str).unwrap_or("betw");
    let mut exp = Experiment::standard().with_params(TraceParams {
        total_warps: 64,
        mem_ops_per_warp: 650,
        footprint_pages: 2048,
        seed: 42,
    });
    for kind in [
        PlatformKind::Ideal,
        PlatformKind::Optane,
        PlatformKind::HybridGpu,
        PlatformKind::ZngBase,
        PlatformKind::ZngRdopt,
        PlatformKind::ZngWropt,
        PlatformKind::Zng,
    ] {
        let r = exp.run(kind, &[wl])?;
        println!(
            "{:<10} ipc={:<8.4} l2={:.2} l1={:.2} tlb={:.2} gcs={:<4} reqs={:<7} fgbps={:<6.2} rpp={:<6.1} ppp={:<6.1} rlat={:<8.0} wlat={:<8.0} us={:.0}",
            kind.to_string(),
            r.ipc,
            r.l2_hit_rate,
            r.l1_hit_rate,
            r.tlb_hit_rate,
            r.gcs,
            r.requests,
            r.flash_array_gbps,
            r.flash_reads_per_page,
            r.flash_programs_per_page,
            r.avg_read_latency,
            r.avg_write_latency,
            r.simulated_us()
        );
    }
    Ok(())
}
