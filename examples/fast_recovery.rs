//! Bounded-time crash recovery: the same power cut recovered twice —
//! once through the full out-of-band scan, once through the mapping
//! checkpoint + delta journal fast path — with the recovery reports
//! side by side.
//!
//! With `--checkpoint` on, a background writer periodically serialises
//! the mapping state into reserved checkpoint blocks and journals every
//! map mutation in between. Recovery then loads the newest *verified*
//! checkpoint, replays the journal tail and re-scans only the blocks
//! touched since — instead of sensing every programmed page's OOB area
//! on the device. Any verification failure (torn or aborted checkpoint,
//! journal overflow, dead die) falls back to the full scan: the fast
//! path can only save time, never change the outcome.
//!
//! ```text
//! cargo run --release --example fast_recovery
//! ```

use zng::{CheckpointConfig, Experiment, PlatformKind, SimConfig, Table, TraceParams};

fn main() -> zng::Result<()> {
    let mix = ["back"];
    let crash_at = 5_500;
    // Enough writes that sealed cold blocks dominate the device: the
    // fast path re-scans only what moved since the last checkpoint.
    let params = TraceParams {
        total_warps: 8,
        mem_ops_per_warp: 800,
        footprint_pages: 512,
        seed: 7,
    };

    // Twin A: the crash recovered through the full OOB scan.
    let mut full_cfg = SimConfig::tiny();
    full_cfg.crash_at = Some(crash_at);
    let full = Experiment::quick()
        .with_config(full_cfg)
        .with_params(params)
        .run(PlatformKind::ZngBase, &mix)?;
    let full_cr = full.crash_recovery.expect("the cut fires mid-run");

    // Twin B: same run, but a checkpoint writer ticks every 100
    // completed requests, so recovery takes the fast path.
    let mut fast_cfg = SimConfig::tiny();
    fast_cfg.checkpoint = CheckpointConfig::on(100);
    fast_cfg.crash_at = Some(crash_at);
    let fast = Experiment::quick()
        .with_config(fast_cfg)
        .with_params(params)
        .run(PlatformKind::ZngBase, &mix)?;
    let fast_cr = fast.crash_recovery.expect("the cut fires mid-run");
    let ck = fast.checkpoint.expect("checkpointing was on");

    assert!(
        fast_cr.fast_path && !fast_cr.fallback,
        "the checkpointed twin must restore through the fast path: {fast_cr:?}"
    );
    assert!(
        fast_cr.scan_cycles < full_cr.scan_cycles,
        "the fast path must beat the full scan ({} vs {} cycles)",
        fast_cr.scan_cycles.raw(),
        full_cr.scan_cycles.raw(),
    );

    let path = |cr: &zng::CrashRecoverySummary| {
        if cr.fast_path {
            "fast (checkpoint + journal)"
        } else {
            "full OOB scan"
        }
    };
    let mut t = Table::new(vec![
        "recovery metric".into(),
        "full scan".into(),
        "checkpointed".into(),
    ]);
    t.row(vec![
        "path taken".into(),
        path(&full_cr).into(),
        path(&fast_cr).into(),
    ]);
    t.row(vec![
        "pages scanned".into(),
        full_cr.pages_scanned.to_string(),
        fast_cr.pages_scanned.to_string(),
    ]);
    t.row(vec![
        "journal records replayed".into(),
        full_cr.journal_replayed.to_string(),
        fast_cr.journal_replayed.to_string(),
    ]);
    t.row(vec![
        "blocks rescanned".into(),
        full_cr.blocks_rescanned.to_string(),
        fast_cr.blocks_rescanned.to_string(),
    ]);
    t.row(vec![
        "scan cycles".into(),
        full_cr.scan_cycles.raw().to_string(),
        fast_cr.scan_cycles.raw().to_string(),
    ]);
    t.row(vec![
        "scan cycles saved".into(),
        "-".into(),
        fast_cr.cycles_saved.raw().to_string(),
    ]);
    t.print(&format!(
        "power cut after {crash_at} requests on ZnG-base ({})",
        mix.join("-")
    ));

    println!();
    println!(
        "checkpoint writer: {} ticks, {} checkpoints ({} pages), \
         {} journal records ({} pages), {} overflows, {} aborted",
        ck.checkpoint_ticks,
        ck.checkpoints,
        ck.checkpoint_pages,
        ck.journal_records,
        ck.journal_pages,
        ck.journal_overflows,
        ck.aborted,
    );
    println!(
        "both twins completed {} requests across the cut; the restore \
         itself ran {:.1}x faster through the checkpoint",
        fast.requests,
        full_cr.scan_cycles.raw() as f64 / fast_cr.scan_cycles.raw().max(1) as f64,
    );
    Ok(())
}
