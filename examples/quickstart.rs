//! Quickstart: run one multi-app workload on every platform and print
//! the IPC ladder the paper's Fig. 10 is built from.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use zng::{Experiment, PlatformKind, Table};

fn main() -> zng::Result<()> {
    // The paper's flagship mix: read-intensive betweenness centrality
    // co-running with write-intensive backpropagation.
    let mix = ["betw", "back"];
    let mut exp = Experiment::standard();

    let mut table = Table::new(vec![
        "platform".into(),
        "IPC".into(),
        "vs ZnG".into(),
        "flash GB/s".into(),
        "L2 hit".into(),
        "sim us".into(),
    ]);

    let mut platforms = PlatformKind::PAPER_PLATFORMS.to_vec();
    platforms.push(PlatformKind::Ideal);

    let mut results = Vec::new();
    for kind in platforms {
        let r = exp.run(kind, &mix)?;
        results.push(r);
    }
    let zng_ipc = results
        .iter()
        .find(|r| r.platform == PlatformKind::Zng)
        .map(|r| r.ipc)
        .unwrap_or(1.0);

    for r in &results {
        table.row(vec![
            r.platform.to_string(),
            format!("{:.4}", r.ipc),
            format!("{:.2}x", r.ipc / zng_ipc),
            format!("{:.2}", r.flash_array_gbps),
            format!("{:.2}", r.l2_hit_rate),
            format!("{:.0}", r.simulated_us()),
        ]);
    }
    table.print(&format!("IPC on {} (normalized to ZnG)", mix.join("-")));
    Ok(())
}
