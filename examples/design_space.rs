//! Design-space exploration: sweep ZnG's two key design choices — the
//! flash-register interconnect (paper Fig. 14) and the read-prefetch
//! policy (paper Fig. 16b) — on the flagship `betw-back` mix.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use zng::{Experiment, PlatformKind, Table, TraceParams};
use zng_flash::RegisterTopology;
use zng_gpu::PrefetchPolicy;

fn main() -> zng::Result<()> {
    let params = TraceParams {
        total_warps: 128,
        mem_ops_per_warp: 650,
        footprint_pages: 2048,
        seed: 42,
    };

    // --- Register interconnects (Fig. 14) ---
    // Stress configuration: few registers per plane (the paper's Fig. 14
    // regime, where the register network actually matters).
    let mut t = Table::new(vec![
        "register network".into(),
        "IPC".into(),
        "migrations".into(),
        "programs/page".into(),
    ]);
    for topo in [
        RegisterTopology::SwNet,
        RegisterTopology::FcNet,
        RegisterTopology::NiF,
    ] {
        let mut exp = Experiment::standard().with_params(params);
        exp.config_mut().register_topology = topo;
        exp.config_mut().flash.registers_per_plane = 8;
        let r = exp.run(PlatformKind::Zng, &["betw", "back"])?;
        t.row(vec![
            topo.to_string(),
            format!("{:.4}", r.ipc),
            r.register_migrations.to_string(),
            format!("{:.2}", r.flash_programs_per_page),
        ]);
    }
    t.print("Flash-register interconnects (Fig. 14)");

    // --- Prefetch policies (Fig. 16b) ---
    let mut t = Table::new(vec![
        "prefetch policy".into(),
        "IPC".into(),
        "L2 hit".into(),
        "reads/page".into(),
    ]);
    for (name, policy) in [
        ("nopref", PrefetchPolicy::None),
        ("1KBpref", PrefetchPolicy::Fixed(1024)),
        ("4KBpref", PrefetchPolicy::Fixed(4096)),
        ("predict-4KB", PrefetchPolicy::Predicted4K),
        ("dyn-pref", PrefetchPolicy::Dynamic),
    ] {
        let mut exp = Experiment::standard().with_params(params);
        exp.config_mut().prefetch_policy = policy;
        let r = exp.run(PlatformKind::Zng, &["betw", "back"])?;
        t.row(vec![
            name.into(),
            format!("{:.4}", r.ipc),
            format!("{:.2}", r.l2_hit_rate),
            format!("{:.1}", r.flash_reads_per_page),
        ]);
    }
    t.print("Read-prefetch policies (Fig. 16b)");
    Ok(())
}
