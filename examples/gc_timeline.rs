//! Garbage-collection timeline (the paper's Fig. 17): run `betw-back` on
//! full ZnG with and without GC cost, report per-app performance impact,
//! and print the per-app memory-request time series around the GC events.
//!
//! ```text
//! cargo run --release --example gc_timeline
//! ```

use zng::{Experiment, PlatformKind, Table, TraceParams};

fn main() -> zng::Result<()> {
    // A write-hot configuration so the log blocks fill and GC fires:
    // fewer flash registers (less merging) and a larger write region.
    let params = TraceParams {
        total_warps: 128,
        mem_ops_per_warp: 900,
        footprint_pages: 4096,
        seed: 42,
    };
    let mut exp = Experiment::standard().with_params(params);
    exp.config_mut().flash.registers_per_plane = 8;
    exp.config_mut().group_size = 2;

    let with_gc = exp.run(PlatformKind::Zng, &["betw", "back"])?;
    exp.config_mut().free_gc = true;
    let no_gc = exp.run(PlatformKind::Zng, &["betw", "back"])?;
    exp.config_mut().free_gc = false;

    let mut t = Table::new(vec![
        "app".into(),
        "IPC no-GC".into(),
        "IPC with-GC".into(),
        "impact".into(),
    ]);
    for (app, name) in [(0u16, "betw"), (1u16, "back")] {
        let a = no_gc.app_ipc(app);
        let b = with_gc.app_ipc(app);
        t.row(vec![
            name.into(),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{:+.0}%", (b / a - 1.0) * 100.0),
        ]);
    }
    t.print("GC impact on per-app performance (Fig. 17a)");

    println!(
        "\ngarbage collections: {}  (events: {:?} us)",
        with_gc.gcs,
        with_gc
            .gc_events
            .iter()
            .map(|(s, e)| (s.raw() / 1200, e.raw() / 1200))
            .collect::<Vec<_>>()
    );

    // Fig. 17b: requests per 10 us bucket, per app.
    let mut ts = Table::new(vec![
        "t (us)".into(),
        "betw reqs".into(),
        "back reqs".into(),
    ]);
    let empty = Vec::new();
    let betw = with_gc.per_app_series.get(&0).unwrap_or(&empty);
    let back = with_gc.per_app_series.get(&1).unwrap_or(&empty);
    let buckets = betw.len().max(back.len());
    let step = (buckets / 24).max(1);
    for i in (0..buckets).step_by(step) {
        ts.row(vec![
            format!("{}", i as u64 * with_gc.series_interval.raw() / 1200),
            betw.get(i).copied().unwrap_or(0).to_string(),
            back.get(i).copied().unwrap_or(0).to_string(),
        ]);
    }
    ts.print("Memory requests over time (Fig. 17b)");
    Ok(())
}
