//! Graph-analytics deep dive: run every GraphBIG workload from Table II
//! on the full ZnG platform and report the metrics the paper highlights —
//! IPC, L2 behaviour, flash page re-access (Fig. 12's quantity) and the
//! read-prefetch predictor's accuracy (Fig. 15b).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use zng::{table2, Experiment, PlatformKind, Suite, Table, TraceParams};

fn main() -> zng::Result<()> {
    let mut exp = Experiment::standard().with_params(TraceParams {
        total_warps: 128,
        mem_ops_per_warp: 650,
        footprint_pages: 2048,
        seed: 42,
    });

    let mut table = Table::new(vec![
        "workload".into(),
        "IPC".into(),
        "L2 hit".into(),
        "TLB hit".into(),
        "pred acc".into(),
        "reads/page".into(),
        "flash GB/s".into(),
    ]);

    for spec in table2().iter().filter(|w| w.suite == Suite::GraphBig) {
        let r = exp.run(PlatformKind::Zng, &[spec.name])?;
        table.row(vec![
            spec.name.to_string(),
            format!("{:.3}", r.ipc),
            format!("{:.2}", r.l2_hit_rate),
            format!("{:.2}", r.tlb_hit_rate),
            format!("{:.2}", r.predictor_accuracy),
            format!("{:.1}", r.flash_reads_per_page),
            format!("{:.1}", r.flash_array_gbps),
        ]);
    }
    table.print("GraphBIG workloads on full ZnG");
    Ok(())
}
