//! Redundancy & self-healing: stripe the flash with RAIN parity, kill a
//! die mid-run, sever a mesh link, keep serving reads by reconstructing
//! from the surviving stripe members, and rebuild the lost blocks onto
//! spares at the end of the run.
//!
//! The run enables the patrol scrubber too, so the helper thread walks
//! the arrays between demand requests and rewrites pages whose
//! read-retry depth crossed the scrub threshold.
//!
//! ```text
//! cargo run --release --example redundancy_rebuild
//! ```

use zng::{Experiment, PlatformKind, RedundancyConfig, Table};

fn main() -> zng::Result<()> {
    let mix = ["betw"];

    let mut clean = Experiment::quick();
    let baseline = clean.run(PlatformKind::Zng, &mix)?;

    let mut exp = Experiment::quick();
    exp.config_mut().redundancy = RedundancyConfig {
        enabled: true,
        scrub_every_ops: 100,
        scrub_threshold: 2,
        die_fail_at: Some(600),
        die_fail: (1, 0),
        link_fail: Some(2),
    };
    let r = exp.run(PlatformKind::Zng, &mix)?;

    let rd = r.redundancy.expect("redundancy was enabled for this run");
    let mut t = Table::new(vec!["redundancy metric".into(), "value".into()]);
    t.row(vec![
        "reconstructions".into(),
        rd.reconstructions.to_string(),
    ]);
    t.row(vec![
        "member reads fanned out".into(),
        rd.reconstruction_reads.to_string(),
    ]);
    t.row(vec![
        "parity pages flushed".into(),
        rd.parity_pages.to_string(),
    ]);
    t.row(vec![
        "scrub ticks / pages scanned".into(),
        format!("{} / {}", rd.scrub_ticks, rd.scrub_scanned),
    ]);
    t.row(vec!["scrub rewrites".into(), rd.scrub_rewrites.to_string()]);
    t.row(vec!["rebuild pages".into(), rd.rebuild_pages.to_string()]);
    t.row(vec!["degraded reads".into(), rd.degraded_reads.to_string()]);
    t.row(vec!["blocks fenced".into(), rd.fenced_blocks.to_string()]);
    t.row(vec!["dead-die reads".into(), rd.dead_die_reads.to_string()]);
    t.row(vec![
        "transfers rerouted".into(),
        rd.rerouted_transfers.to_string(),
    ]);
    t.row(vec![
        "read-retry depth 0..4+".into(),
        rd.retry_depth_histogram
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/"),
    ]);
    t.print(&format!(
        "die (1,0) failed at request 600, link 2 severed, on ZnG ({})",
        mix.join("-")
    ));

    println!();
    println!(
        "run completed degraded: {} requests in {} cycles \
         (clean run: {} cycles, delta {:+.2}%)",
        r.requests,
        r.cycles.raw(),
        baseline.cycles.raw(),
        100.0 * (r.cycles.raw() as f64 - baseline.cycles.raw() as f64)
            / baseline.cycles.raw() as f64,
    );
    println!(
        "(no acked write was lost: every read that hit the dead die was \
         reconstructed from its stripe, and the end-of-run rebuild moved \
         {} pages back onto healthy spares)",
        rd.rebuild_pages
    );
    Ok(())
}
