//! End-to-end data integrity: inject a silent bit flip below the ECC
//! model and watch the two containment paths.
//!
//! 1. **No redundancy** — the per-page OOB checksum catches the flip on
//!    the read path, the re-read fails the same way, and with nothing to
//!    reconstruct from the read fails loudly: the fetched L2 line is
//!    poisoned (dependent warps fault deterministically instead of
//!    computing on garbage) and the run aborts with
//!    `Error::IntegrityViolation`.
//! 2. **RAIN redundancy on** — the same flip is detected, reconstructed
//!    from the surviving stripe members, and the run completes with the
//!    heal visible in the integrity counters.
//!
//! ```text
//! cargo run --release --example integrity_poison
//! ```

use zng::{Error, Experiment, IntegrityConfig, PlatformKind, RedundancyConfig, Table};

fn main() -> zng::Result<()> {
    let mix = ["betw"];

    // A deterministic single shot: corrupt the 5th page program of the
    // run, early enough that the read path is guaranteed to cross it.
    let shot = IntegrityConfig::with_shot(5);

    // Containment without redundancy: the violation surfaces as a loud
    // error, never as silently wrong data.
    let mut bare = Experiment::quick();
    bare.config_mut().integrity = shot;
    match bare.run(PlatformKind::ZngBase, &mix) {
        Err(Error::IntegrityViolation { block, page }) => {
            println!("without redundancy: read of block {block} page {page} failed loudly");
        }
        Err(e) => return Err(e),
        Ok(_) => {
            eprintln!("error: the corruption shot was never detected");
            std::process::exit(1);
        }
    }

    // The same shot with RAIN parity striping: detected, reconstructed,
    // run completes.
    let mut healed = Experiment::quick();
    healed.config_mut().integrity = shot;
    healed.config_mut().redundancy = RedundancyConfig {
        enabled: true,
        ..RedundancyConfig::default()
    };
    let r = healed.run(PlatformKind::ZngBase, &mix)?;
    let i = r.integrity.expect("integrity verification was on");

    let mut t = Table::new(vec!["integrity metric".into(), "value".into()]);
    t.row(vec![
        "silent corruptions injected".into(),
        i.silent_corruptions.to_string(),
    ]);
    t.row(vec!["detected on read".into(), i.detected.to_string()]);
    t.row(vec!["charged re-reads".into(), i.rereads.to_string()]);
    t.row(vec![
        "reconstructed from parity".into(),
        i.reconstructed.to_string(),
    ]);
    t.row(vec!["quarantined copies".into(), i.quarantined.to_string()]);
    t.row(vec![
        "poisoned L2 lines".into(),
        i.poisoned_lines.to_string(),
    ]);
    t.print("with redundancy: the same shot heals in place");

    assert!(i.detected >= 1, "the shot must be detected");
    assert!(i.reconstructed >= 1, "the shot must be healed");
    assert_eq!(i.poisoned_lines, 0, "a healed read never poisons");
    Ok(())
}
