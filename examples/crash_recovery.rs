//! Crash consistency: cut power mid-run, recover the FTL from the
//! out-of-band metadata scan, resume, and print the recovery report.
//!
//! The cut drops *everything* volatile — mapping tables, flash
//! registers, write buffers, pinned L2 lines — leaving only what the
//! flash arrays durably hold. Recovery scans every programmed page's
//! OOB metadata (logical page number, program stamp, data-vs-log tag),
//! discards torn mid-program pages, resolves duplicate logical pages by
//! stamp, and rebuilds the mapping tables before the workload resumes.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use zng::{Experiment, PlatformKind, Table};

fn main() -> zng::Result<()> {
    let mix = ["back"];
    let crash_at = 1_000;

    let mut clean = Experiment::quick();
    let baseline = clean.run(PlatformKind::Zng, &mix)?;

    let mut exp = Experiment::quick();
    exp.config_mut().crash_at = Some(crash_at);
    let r = exp.run(PlatformKind::Zng, &mix)?;

    let cr = r
        .crash_recovery
        .expect("the cut fires well inside this run");
    let mut t = Table::new(vec!["recovery metric".into(), "value".into()]);
    t.row(vec!["crash at request".into(), cr.at_requests.to_string()]);
    t.row(vec!["crash at cycle".into(), cr.at_cycle.raw().to_string()]);
    t.row(vec!["pages scanned".into(), cr.pages_scanned.to_string()]);
    t.row(vec!["torn discarded".into(), cr.torn_discarded.to_string()]);
    t.row(vec!["stale dropped".into(), cr.stale_dropped.to_string()]);
    t.row(vec!["blocks erased".into(), cr.blocks_erased.to_string()]);
    t.row(vec!["scan cycles".into(), cr.scan_cycles.raw().to_string()]);
    t.print(&format!(
        "power cut after {crash_at} requests on ZnG ({})",
        mix.join("-")
    ));

    println!();
    println!(
        "run completed across the cut: {} requests in {} cycles \
         (clean run: {} cycles, delta {:+.2}%)",
        r.requests,
        r.cycles.raw(),
        baseline.cycles.raw(),
        100.0 * (r.cycles.raw() as f64 - baseline.cycles.raw() as f64)
            / baseline.cycles.raw() as f64,
    );
    println!(
        "(a cut can even shorten the tail: register-buffered dirty data \
         is lost instead of being drained to the arrays)"
    );
    Ok(())
}
