//! Multi-tenant scalability (the paper's Fig. 15a): co-run 1, 2, 4 and 8
//! instances of a read-intensive app (`betw`) and of a write-intensive
//! app (`back`) on ZnG and on the Ideal (unbounded GDDR5) reference, and
//! report aggregate throughput scaling.
//!
//! The paper's finding: ZnG tracks Ideal up to 4 co-runners (the AWS
//! sharing limit) and stays within ~15 % (reads) / ~6 % (writes) at 8.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use zng::{Experiment, PlatformKind, Table, TraceParams};

fn main() -> zng::Result<()> {
    let mut exp = Experiment::standard().with_params(TraceParams {
        total_warps: 64,
        mem_ops_per_warp: 400,
        footprint_pages: 1024,
        seed: 42,
    });

    let mut table = Table::new(vec![
        "apps".into(),
        "betw Ideal".into(),
        "betw ZnG".into(),
        "ZnG/Ideal".into(),
        "back Ideal".into(),
        "back ZnG".into(),
        "ZnG/Ideal".into(),
    ]);

    for n in [1usize, 2, 4, 8] {
        let betw_names = vec!["betw"; n];
        let back_names = vec!["back"; n];
        let betw_ideal = exp.run(PlatformKind::Ideal, &betw_names)?.ipc;
        let betw_zng = exp.run(PlatformKind::Zng, &betw_names)?.ipc;
        let back_ideal = exp.run(PlatformKind::Ideal, &back_names)?.ipc;
        let back_zng = exp.run(PlatformKind::Zng, &back_names)?.ipc;
        table.row(vec![
            n.to_string(),
            format!("{betw_ideal:.3}"),
            format!("{betw_zng:.3}"),
            format!("{:.2}", betw_zng / betw_ideal),
            format!("{back_ideal:.3}"),
            format!("{back_zng:.3}"),
            format!("{:.2}", back_zng / back_ideal),
        ]);
    }
    table.print("Co-running scalability: ZnG vs Ideal (Fig. 15a)");
    Ok(())
}
