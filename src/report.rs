//! Plain-text table rendering for the figure benches.
//!
//! Every bench prints its figure/table as aligned rows so the output can
//! be compared side-by-side with the paper (see `EXPERIMENTS.md`).

use std::fmt::Write as _;

/// A simple aligned-column table builder.
///
/// # Examples
///
/// ```
/// let mut t = zng::Table::new(vec!["workload".into(), "IPC".into()]);
/// t.row(vec!["betw-back".into(), "0.512".into()]);
/// let s = t.render();
/// assert!(s.contains("betw-back"));
/// assert!(s.contains("IPC"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Convenience: a row of a label plus formatted numbers.
    pub fn num_row(&mut self, label: &str, values: &[f64]) -> &mut Table {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells)
    }

    /// The table's headline metric: the label of the first data row that
    /// contains a numeric cell, paired with that cell's value.
    ///
    /// Benches use this to export one representative number per figure
    /// into `BENCH.json` (see `scripts/bench.sh`).
    ///
    /// # Examples
    ///
    /// ```
    /// let mut t = zng::Table::new(vec!["w".into(), "IPC".into()]);
    /// t.row(vec!["betw".into(), "0.512".into()]);
    /// assert_eq!(t.headline(), Some(("betw".into(), 0.512)));
    /// ```
    pub fn headline(&self) -> Option<(String, f64)> {
        self.rows.iter().find_map(|r| {
            let label = r.first()?.clone();
            r.iter()
                .skip(1)
                .find_map(|c| c.trim().parse::<f64>().ok().filter(|v| v.is_finite()))
                .map(|v| (label, v))
        })
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        fn cell(r: &[String], c: usize) -> &str {
            r.get(c).map(String::as_str).unwrap_or("")
        }
        for (c, w) in widths.iter_mut().enumerate() {
            *w = std::iter::once(cell(&self.headers, c).len())
                .chain(self.rows.iter().map(|r| cell(r, c).len()))
                .max()
                .unwrap_or(0);
        }
        let mut out = String::new();
        let write_row = |out: &mut String, r: &[String]| {
            for (c, width) in widths.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell(r, c), width = width);
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }

    /// Prints the table to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
                                    // The second column starts at the same offset in every row.
        let col = lines[0].find("bbbb").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    fn num_row_formats() {
        let mut t = Table::new(vec!["w".into(), "v".into()]);
        t.num_row("x", &[1.23456]);
        assert!(t.render().contains("1.235"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn headline_finds_first_numeric_cell() {
        let mut t = Table::new(vec!["w".into(), "note".into(), "IPC".into()]);
        t.row(vec!["hdr".into(), "n/a".into(), "n/a".into()]);
        t.row(vec!["betw".into(), "ok".into(), "1.250".into()]);
        // The first row has no parseable number, so the second wins.
        assert_eq!(t.headline(), Some(("betw".into(), 1.25)));
        assert_eq!(Table::default().headline(), None);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains('3'));
    }
}
