//! `zng-cli` — run ZnG simulations from the command line.
//!
//! ```text
//! zng-cli list                              # platforms and workloads
//! zng-cli run --platform zng --workloads betw,back
//! zng-cli run -p optane -w bfs1,gaus --warps 64 --ops 300 --json
//! zng-cli sweep --workloads betw,back       # every platform, one table
//! ```

use std::process::ExitCode;

use zng::{
    table2, CheckpointConfig, Cycle, DegradingDie, EnduranceConfig, Experiment, FaultConfig,
    FaultProfile, HealthConfig, IntegrityConfig, PlatformKind, QosConfig, RedundancyConfig,
    RunResult, Table, TraceParams,
};
use zng_types::ids::AppId;
use zng_workloads::{by_name, generate, TraceBundle};

/// Exit-code contract: usage errors (bad flags, missing arguments)
/// exit 2 and print the usage text; simulation errors (integrity
/// violations, device wear-out, watchdog stalls, I/O) exit 1 with the
/// error alone on stderr; success exits 0.
enum CliError {
    Usage(String),
    Sim(String),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Sim(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  zng-cli list
  zng-cli run    --platform <name> --workloads <a,b,..> [options]
  zng-cli sweep  --workloads <a,b,..> [options]
  zng-cli traces --workloads <name> --out <file.json> [options]

options:
  -p, --platform   hetero|hybridgpu|optane|zng-base|zng-rdopt|zng-wropt|zng|ideal
  -w, --workloads  comma-separated Table II names (co-run as one mix)
      --warps      warps per application        (default 128)
      --ops        memory ops per warp          (default 650)
      --footprint  footprint in 4 KiB pages     (default 2048)
      --seed       RNG seed                     (default 42)
      --faults     fault profile: none|nominal|end-of-life (default none)
      --crash-at   cut power after N completed requests, recover, resume
      --qos        enable the bounded overload-control preset
      --queue-depth    per-channel in-flight bound       (implies --qos)
      --retry-budget   backoff retries per rejected request (default 8)
      --gc-stall-budget  max cycles one GC may stall its victim
      --gc-credits     foreground stalls per GC before early release
      --fair-window    per-app fair-share window in requests
      --redundancy     enable RAIN parity + reconstruction-on-read
      --scrub-every    patrol-scrub step every N requests (implies --redundancy)
      --scrub-threshold  retry depth that triggers a scrub rewrite (default 2)
      --die-fail-at    kill one die after N requests (implies --redundancy)
      --die-fail       which die dies, as ch:die    (default 0:0)
      --link-fail      sever channel N's mesh link  (implies --redundancy)
      --integrity      verify per-page OOB checksums on every read
      --sdc-rate       silent-corruption probability per read at
                       end-of-life wear, 0..1     (implies --integrity)
      --sdc-at         silently corrupt the Nth page program/preload
                       (implies --integrity)
      --endurance      enable lifetime management: wear tracking,
                       graceful end-of-life capacity degradation
      --refresh-every  refresh-scheduler step every N requests
                       (implies --endurance)
      --disturb-threshold   array senses before a block is refreshed
                            (implies --endurance)
      --retention-threshold cycles of retention age before a refresh
                            (implies --endurance)
      --wear-spread    max/mean wear ratio that triggers static
                       levelling, >= 1 or 0=off (implies --endurance)
      --checkpoint     checkpoint the mapping tables in the background
                       so crash recovery takes the journal fast path
      --checkpoint-every  checkpoint cadence in completed requests
                          (default 512, implies --checkpoint)
      --journal-cap    max delta-journal records between checkpoints,
                       0=unbounded (implies --checkpoint)
      --health         predictive die-health monitoring: score the
                       per-die telemetry every N completed requests and
                       quarantine suspect dies
      --health-window  minimum per-die observations before a die is
                       scored (implies --health)
      --suspect-threshold  health score in (0,1] that flags a suspect
                           (implies --health)
      --evacuate       pre-emptively migrate live data off suspect dies
                       (implies --health)
      --degrading-die  inject one die degrading toward death, as
                       ch:die:onset:death (cycles)
      --watchdog       abort with exit 1 when no request completes
                       within N cycles
      --perf       report simulator throughput (wall time, events/sec,
                   peak queue depth, per-kind event counts)
      --json       emit the full RunResult as JSON";

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("platforms:");
            for p in PlatformKind::PAPER_PLATFORMS {
                println!("  {}", flag_name(p));
            }
            println!("  ideal");
            println!("\nworkloads (Table II):");
            for w in table2() {
                println!(
                    "  {:<6} {:?}, read ratio {:.2}, {} kernels",
                    w.name, w.suite, w.read_ratio, w.kernels
                );
            }
            Ok(())
        }
        Some("run") => {
            let opts = Opts::parse(&args[1..], "run", RUN_FLAGS).map_err(CliError::Usage)?;
            let platform = opts
                .platform
                .ok_or_else(|| CliError::Usage("run requires --platform".into()))?;
            let mut exp = Experiment::standard().with_params(opts.params);
            opts.apply(&mut exp);
            let r = exp
                .run(platform, &opts.workload_refs())
                .map_err(|e| CliError::Sim(e.to_string()))?;
            if opts.json {
                println!("{}", r.to_json_value().to_string_pretty());
            } else {
                print_result(&r);
            }
            Ok(())
        }
        Some("sweep") => {
            let opts = Opts::parse(&args[1..], "sweep", SWEEP_FLAGS).map_err(CliError::Usage)?;
            let mut exp = Experiment::standard().with_params(opts.params);
            opts.apply(&mut exp);
            let mut t = Table::new(vec![
                "platform".into(),
                "IPC".into(),
                "L2 hit".into(),
                "flash GB/s".into(),
                "GCs".into(),
                "sim us".into(),
            ]);
            let mut platforms = PlatformKind::PAPER_PLATFORMS.to_vec();
            platforms.push(PlatformKind::Ideal);
            // One worker thread per platform: the runs are independent,
            // and results come back in listed order so the table is
            // identical to the sequential sweep.
            let results = exp
                .run_platforms(&platforms, &opts.workload_refs())
                .map_err(|e| CliError::Sim(e.to_string()))?;
            for (p, r) in platforms.iter().zip(&results) {
                t.row(vec![
                    p.to_string(),
                    format!("{:.4}", r.ipc),
                    format!("{:.2}", r.l2_hit_rate),
                    format!("{:.2}", r.flash_array_gbps),
                    r.gcs.to_string(),
                    format!("{:.0}", r.simulated_us()),
                ]);
            }
            t.print(&format!("sweep: {}", opts.workloads.join("-")));
            Ok(())
        }
        Some("traces") => {
            let mut out: Option<String> = None;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--out" {
                    out = Some(
                        it.next()
                            .cloned()
                            .ok_or_else(|| CliError::Usage("--out requires a value".into()))?,
                    );
                } else {
                    rest.push(a.clone());
                }
            }
            let opts = Opts::parse(&rest, "traces", TRACES_FLAGS).map_err(CliError::Usage)?;
            let out = out.ok_or_else(|| CliError::Usage("traces requires --out <file>".into()))?;
            let name = opts
                .workloads
                .first()
                .ok_or_else(|| CliError::Usage("--workloads is required".into()))?;
            let spec = by_name(name).map_err(|e| CliError::Usage(e.to_string()))?;
            let traces = generate(&spec, AppId(0), &opts.params);
            let bundle = TraceBundle::new(name, opts.params.seed, traces);
            bundle
                .save(std::path::Path::new(&out))
                .map_err(|e| CliError::Sim(e.to_string()))?;
            println!(
                "wrote {} warps ({} memory ops) of `{name}` to {out}",
                bundle.traces.len(),
                bundle.mem_ops()
            );
            Ok(())
        }
        _ => Err(CliError::Usage(
            "expected a subcommand: list | run | sweep | traces".into(),
        )),
    }
}

/// Flags each subcommand accepts (used for unknown-flag diagnostics).
const RUN_FLAGS: &[&str] = &[
    "-p",
    "--platform",
    "-w",
    "--workloads",
    "--warps",
    "--ops",
    "--footprint",
    "--seed",
    "--faults",
    "--crash-at",
    "--qos",
    "--queue-depth",
    "--retry-budget",
    "--gc-stall-budget",
    "--gc-credits",
    "--fair-window",
    "--redundancy",
    "--scrub-every",
    "--scrub-threshold",
    "--die-fail-at",
    "--die-fail",
    "--link-fail",
    "--integrity",
    "--sdc-rate",
    "--sdc-at",
    "--endurance",
    "--refresh-every",
    "--disturb-threshold",
    "--retention-threshold",
    "--wear-spread",
    "--checkpoint",
    "--checkpoint-every",
    "--journal-cap",
    "--health",
    "--health-window",
    "--suspect-threshold",
    "--evacuate",
    "--degrading-die",
    "--watchdog",
    "--perf",
    "--json",
];
const SWEEP_FLAGS: &[&str] = &[
    "-w",
    "--workloads",
    "--warps",
    "--ops",
    "--footprint",
    "--seed",
    "--faults",
    "--crash-at",
    "--qos",
    "--queue-depth",
    "--retry-budget",
    "--gc-stall-budget",
    "--gc-credits",
    "--fair-window",
    "--redundancy",
    "--scrub-every",
    "--scrub-threshold",
    "--die-fail-at",
    "--die-fail",
    "--link-fail",
    "--integrity",
    "--sdc-rate",
    "--sdc-at",
    "--endurance",
    "--refresh-every",
    "--disturb-threshold",
    "--retention-threshold",
    "--wear-spread",
    "--checkpoint",
    "--checkpoint-every",
    "--journal-cap",
    "--health",
    "--health-window",
    "--suspect-threshold",
    "--evacuate",
    "--degrading-die",
    "--watchdog",
    "--perf",
];
const TRACES_FLAGS: &[&str] = &[
    "-w",
    "--workloads",
    "--warps",
    "--ops",
    "--footprint",
    "--seed",
    "--out",
];

/// Queue depth installed by a bare `--qos` (no `--queue-depth`).
const DEFAULT_QUEUE_DEPTH: usize = 16;

/// Checkpoint cadence installed by a bare `--checkpoint` (no
/// `--checkpoint-every`).
const DEFAULT_CHECKPOINT_EVERY: u64 = 512;

/// Monitor cadence installed by a health flag that implies `--health`.
const DEFAULT_HEALTH_EVERY: u64 = 256;

struct Opts {
    platform: Option<PlatformKind>,
    workloads: Vec<String>,
    params: TraceParams,
    faults: FaultProfile,
    degrading: Option<DegradingDie>,
    crash_at: Option<u64>,
    qos: Option<QosConfig>,
    redundancy: Option<RedundancyConfig>,
    integrity: Option<IntegrityConfig>,
    endurance: Option<EnduranceConfig>,
    checkpoint: Option<CheckpointConfig>,
    health: Option<HealthConfig>,
    watchdog: Option<u64>,
    perf: bool,
    json: bool,
}

impl Opts {
    fn parse(args: &[String], subcommand: &str, allowed: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts {
            platform: None,
            workloads: Vec::new(),
            params: TraceParams {
                total_warps: 128,
                mem_ops_per_warp: 650,
                footprint_pages: 2048,
                seed: 42,
            },
            faults: FaultProfile::None,
            degrading: None,
            crash_at: None,
            qos: None,
            redundancy: None,
            integrity: None,
            endurance: None,
            checkpoint: None,
            health: None,
            watchdog: None,
            perf: false,
            json: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a.starts_with('-') && !allowed.contains(&a.as_str()) {
                return Err(format!(
                    "unknown flag `{a}` for `{subcommand}` — valid flags: {}",
                    allowed.join(", ")
                ));
            }
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match a.as_str() {
                "-p" | "--platform" => {
                    opts.platform = Some(parse_platform(&value("--platform")?)?);
                }
                "-w" | "--workloads" => {
                    opts.workloads = value("--workloads")?
                        .split(',')
                        .map(str::to_string)
                        .collect();
                }
                "--warps" => opts.params.total_warps = parse_num(&value("--warps")?)?,
                "--ops" => opts.params.mem_ops_per_warp = parse_num(&value("--ops")?)?,
                "--footprint" => opts.params.footprint_pages = parse_num(&value("--footprint")?)?,
                "--seed" => opts.params.seed = parse_num(&value("--seed")?)? as u64,
                "--faults" => {
                    opts.faults =
                        FaultProfile::parse(&value("--faults")?).map_err(|e| e.to_string())?;
                }
                "--crash-at" => {
                    opts.crash_at = Some(parse_num(&value("--crash-at")?)? as u64);
                }
                "--qos" => {
                    opts.qos_mut();
                }
                "--queue-depth" => {
                    let depth = parse_num(&value("--queue-depth")?)?;
                    opts.qos_mut().queue_depth = Some(depth);
                }
                "--retry-budget" => {
                    opts.qos_mut().retry_budget = parse_num(&value("--retry-budget")?)? as u32;
                }
                "--gc-stall-budget" => {
                    let cycles = parse_num(&value("--gc-stall-budget")?)? as u64;
                    opts.qos_mut().gc_stall_budget = Some(Cycle(cycles));
                }
                "--gc-credits" => {
                    opts.qos_mut().gc_credit_writes = parse_num(&value("--gc-credits")?)? as u64;
                }
                "--fair-window" => {
                    opts.qos_mut().fair_window = parse_num(&value("--fair-window")?)? as u64;
                }
                "--redundancy" => {
                    opts.redundancy_mut();
                }
                "--scrub-every" => {
                    opts.redundancy_mut().scrub_every_ops =
                        parse_num(&value("--scrub-every")?)? as u64;
                }
                "--scrub-threshold" => {
                    opts.redundancy_mut().scrub_threshold =
                        parse_num(&value("--scrub-threshold")?)? as u32;
                }
                "--die-fail-at" => {
                    opts.redundancy_mut().die_fail_at =
                        Some(parse_num(&value("--die-fail-at")?)? as u64);
                }
                "--die-fail" => {
                    let spec = value("--die-fail")?;
                    let (ch, die) = spec
                        .split_once(':')
                        .ok_or_else(|| format!("--die-fail wants ch:die, got `{spec}`"))?;
                    opts.redundancy_mut().die_fail =
                        (parse_num(ch)? as u16, parse_num(die)? as u16);
                }
                "--link-fail" => {
                    opts.redundancy_mut().link_fail =
                        Some(parse_num(&value("--link-fail")?)? as u16);
                }
                "--integrity" => {
                    opts.integrity_mut();
                }
                "--sdc-rate" => {
                    opts.integrity_mut().sdc_rate = parse_float(&value("--sdc-rate")?)?;
                }
                "--sdc-at" => {
                    opts.integrity_mut().sdc_at = Some(parse_num(&value("--sdc-at")?)? as u64);
                }
                "--endurance" => {
                    opts.endurance_mut();
                }
                "--refresh-every" => {
                    opts.endurance_mut().refresh_every_ops =
                        parse_num(&value("--refresh-every")?)? as u64;
                }
                "--disturb-threshold" => {
                    opts.endurance_mut().disturb_threshold =
                        parse_num(&value("--disturb-threshold")?)? as u64;
                }
                "--retention-threshold" => {
                    opts.endurance_mut().retention_threshold =
                        parse_num(&value("--retention-threshold")?)? as u64;
                }
                "--wear-spread" => {
                    opts.endurance_mut().wear_spread = parse_float(&value("--wear-spread")?)?;
                }
                "--checkpoint" => {
                    opts.checkpoint_mut();
                }
                "--checkpoint-every" => {
                    opts.checkpoint_mut().every_ops =
                        parse_num(&value("--checkpoint-every")?)? as u64;
                }
                "--journal-cap" => {
                    opts.checkpoint_mut().journal_cap = parse_num(&value("--journal-cap")?)? as u64;
                }
                "--health" => {
                    opts.health_mut().every_ops = parse_num(&value("--health")?)? as u64;
                }
                "--health-window" => {
                    opts.health_mut().window = parse_num(&value("--health-window")?)? as u64;
                }
                "--suspect-threshold" => {
                    opts.health_mut().suspect_threshold =
                        parse_float(&value("--suspect-threshold")?)?;
                }
                "--evacuate" => {
                    opts.health_mut().evacuate = true;
                }
                "--degrading-die" => {
                    let spec = value("--degrading-die")?;
                    let parts: Vec<&str> = spec.split(':').collect();
                    let [ch, die, onset, death] = parts.as_slice() else {
                        return Err(format!(
                            "--degrading-die wants ch:die:onset:death, got `{spec}`"
                        ));
                    };
                    opts.degrading = Some(DegradingDie {
                        channel: parse_num(ch)? as u16,
                        die: parse_num(die)? as u16,
                        onset: parse_num(onset)? as u64,
                        death: parse_num(death)? as u64,
                    });
                }
                "--watchdog" => {
                    opts.watchdog = Some(parse_num(&value("--watchdog")?)? as u64);
                }
                "--perf" => opts.perf = true,
                "--json" => opts.json = true,
                other => {
                    return Err(format!(
                        "unknown argument `{other}` for `{subcommand}` — valid flags: {}",
                        allowed.join(", ")
                    ))
                }
            }
        }
        if opts.workloads.is_empty() {
            return Err("--workloads is required".into());
        }
        // Unknown workload names are usage errors, caught before any
        // simulation work starts.
        for w in &opts.workloads {
            by_name(w).map_err(|e| e.to_string())?;
        }
        Ok(opts)
    }

    /// The QoS policy being built up by flags, starting from the bounded
    /// preset the first time any QoS flag appears.
    fn qos_mut(&mut self) -> &mut QosConfig {
        self.qos
            .get_or_insert_with(|| QosConfig::bounded(DEFAULT_QUEUE_DEPTH))
    }

    /// The redundancy policy being built up by flags, enabled the first
    /// time any redundancy flag appears.
    fn redundancy_mut(&mut self) -> &mut RedundancyConfig {
        self.redundancy
            .get_or_insert_with(|| RedundancyConfig::rain(0))
    }

    /// The integrity policy being built up by flags, enabled (verified
    /// reads, no injection) the first time any integrity flag appears.
    fn integrity_mut(&mut self) -> &mut IntegrityConfig {
        self.integrity.get_or_insert_with(|| IntegrityConfig {
            enabled: true,
            ..IntegrityConfig::off()
        })
    }

    /// The endurance policy being built up by flags, enabled with the
    /// scheduler's default thresholds (no cadence) the first time any
    /// endurance flag appears.
    fn endurance_mut(&mut self) -> &mut EnduranceConfig {
        self.endurance.get_or_insert_with(|| EnduranceConfig::on(0))
    }

    /// The checkpoint policy being built up by flags, enabled with the
    /// default cadence the first time any checkpoint flag appears.
    fn checkpoint_mut(&mut self) -> &mut CheckpointConfig {
        self.checkpoint
            .get_or_insert_with(|| CheckpointConfig::on(DEFAULT_CHECKPOINT_EVERY))
    }

    /// The health policy being built up by flags, enabled with the
    /// default cadence the first time any health flag appears.
    fn health_mut(&mut self) -> &mut HealthConfig {
        self.health
            .get_or_insert_with(|| HealthConfig::on(DEFAULT_HEALTH_EVERY))
    }

    /// Installs the parsed policies into the experiment's configuration.
    fn apply(&self, exp: &mut Experiment) {
        exp.config_mut().fault = self.fault_config();
        exp.config_mut().crash_at = self.crash_at;
        if let Some(q) = self.qos {
            exp.config_mut().qos = q;
        }
        if let Some(rd) = self.redundancy {
            exp.config_mut().redundancy = rd;
        }
        if let Some(mut i) = self.integrity {
            // The SDC streams share the run's RNG seed.
            i.seed = self.params.seed;
            exp.config_mut().integrity = i;
        }
        if let Some(e) = self.endurance {
            exp.config_mut().endurance = e;
        }
        if let Some(c) = self.checkpoint {
            exp.config_mut().checkpoint = c;
        }
        if let Some(h) = self.health {
            exp.config_mut().health = h;
        }
        exp.config_mut().watchdog = self.watchdog;
        exp.config_mut().perf = self.perf;
    }

    fn workload_refs(&self) -> Vec<&str> {
        self.workloads.iter().map(String::as_str).collect()
    }

    /// The fault configuration implied by `--faults`, `--seed` and
    /// `--degrading-die`.
    fn fault_config(&self) -> FaultConfig {
        FaultConfig {
            profile: self.faults,
            seed: self.params.seed,
            degrading: self.degrading,
        }
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn parse_float(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn parse_platform(s: &str) -> Result<PlatformKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "hetero" => PlatformKind::Hetero,
        "hybridgpu" | "hybrid" => PlatformKind::HybridGpu,
        "optane" => PlatformKind::Optane,
        "zng-base" | "base" => PlatformKind::ZngBase,
        "zng-rdopt" | "rdopt" => PlatformKind::ZngRdopt,
        "zng-wropt" | "wropt" => PlatformKind::ZngWropt,
        "zng" => PlatformKind::Zng,
        "ideal" => PlatformKind::Ideal,
        other => return Err(format!("unknown platform `{other}`")),
    })
}

fn flag_name(p: PlatformKind) -> &'static str {
    match p {
        PlatformKind::Hetero => "hetero",
        PlatformKind::HybridGpu => "hybridgpu",
        PlatformKind::Optane => "optane",
        PlatformKind::ZngBase => "zng-base",
        PlatformKind::ZngRdopt => "zng-rdopt",
        PlatformKind::ZngWropt => "zng-wropt",
        PlatformKind::Zng => "zng",
        PlatformKind::Ideal => "ideal",
    }
}

fn print_result(r: &RunResult) {
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["platform".into(), r.platform.to_string()]);
    t.row(vec!["workload".into(), r.workload.clone()]);
    t.row(vec!["IPC".into(), format!("{:.4}", r.ipc)]);
    t.row(vec!["instructions".into(), r.instructions.to_string()]);
    t.row(vec!["requests".into(), r.requests.to_string()]);
    t.row(vec!["cycles".into(), r.cycles.raw().to_string()]);
    t.row(vec![
        "simulated us".into(),
        format!("{:.0}", r.simulated_us()),
    ]);
    t.row(vec!["L1 hit".into(), format!("{:.3}", r.l1_hit_rate)]);
    t.row(vec!["L2 hit".into(), format!("{:.3}", r.l2_hit_rate)]);
    t.row(vec!["TLB hit".into(), format!("{:.3}", r.tlb_hit_rate)]);
    t.row(vec![
        "flash array GB/s".into(),
        format!("{:.2}", r.flash_array_gbps),
    ]);
    t.row(vec![
        "flash reads/page".into(),
        format!("{:.2}", r.flash_reads_per_page),
    ]);
    t.row(vec![
        "flash programs/page".into(),
        format!("{:.2}", r.flash_programs_per_page),
    ]);
    t.row(vec![
        "predictor accuracy".into(),
        format!("{:.3}", r.predictor_accuracy),
    ]);
    t.row(vec!["GCs".into(), r.gcs.to_string()]);
    t.row(vec![
        "register migrations".into(),
        r.register_migrations.to_string(),
    ]);
    t.row(vec!["read retries".into(), r.read_retries.to_string()]);
    t.row(vec![
        "uncorrectable reads".into(),
        r.uncorrectable_reads.to_string(),
    ]);
    t.row(vec![
        "program failures".into(),
        r.program_failures.to_string(),
    ]);
    t.row(vec!["erase failures".into(), r.erase_failures.to_string()]);
    t.row(vec!["blocks retired".into(), r.blocks_retired.to_string()]);
    t.row(vec!["write re-drives".into(), r.write_redrives.to_string()]);
    if let Some(q) = &r.qos {
        t.row(vec!["qos rejected".into(), q.rejected.to_string()]);
        t.row(vec!["qos retried".into(), q.retried.to_string()]);
        t.row(vec![
            "qos budget exhausted".into(),
            q.retry_budget_exhausted.to_string(),
        ]);
        t.row(vec!["qos MSHR stalls".into(), q.mshr_stalls.to_string()]);
        t.row(vec![
            "qos pinned overflows".into(),
            q.pinned_overflow_stalls.to_string(),
        ]);
        t.row(vec![
            "qos GC deadline misses".into(),
            q.gc_deadline_misses.to_string(),
        ]);
        t.row(vec!["qos paced GCs".into(), q.paced_gcs.to_string()]);
        t.row(vec![
            "qos GC credits exhausted".into(),
            q.gc_credit_exhausted.to_string(),
        ]);
        t.row(vec![
            "qos fairness throttles".into(),
            q.fairness_throttles.to_string(),
        ]);
        t.row(vec![
            "qos max service lag".into(),
            q.max_service_lag.to_string(),
        ]);
        t.row(vec![
            "qos max queue occupancy".into(),
            q.max_queue_occupancy.to_string(),
        ]);
        t.row(vec![
            "read p50/p95/p99".into(),
            format!("{}/{}/{}", q.read_p50, q.read_p95, q.read_p99),
        ]);
        t.row(vec![
            "write p50/p95/p99".into(),
            format!("{}/{}/{}", q.write_p50, q.write_p95, q.write_p99),
        ]);
        for (app, lat) in &r.per_app_read_latency {
            t.row(vec![format!("app{app} avg read lat"), format!("{lat:.0}")]);
        }
        for (app, lat) in &r.per_app_write_latency {
            t.row(vec![format!("app{app} avg write lat"), format!("{lat:.0}")]);
        }
    }
    if let Some(rd) = &r.redundancy {
        t.row(vec![
            "rain reconstructions".into(),
            rd.reconstructions.to_string(),
        ]);
        t.row(vec![
            "rain member reads".into(),
            rd.reconstruction_reads.to_string(),
        ]);
        t.row(vec![
            "rain parity pages".into(),
            rd.parity_pages.to_string(),
        ]);
        t.row(vec![
            "scrub ticks/scanned".into(),
            format!("{}/{}", rd.scrub_ticks, rd.scrub_scanned),
        ]);
        t.row(vec!["scrub rewrites".into(), rd.scrub_rewrites.to_string()]);
        t.row(vec!["scrub overruns".into(), rd.scrub_overruns.to_string()]);
        t.row(vec!["rebuild pages".into(), rd.rebuild_pages.to_string()]);
        t.row(vec!["degraded reads".into(), rd.degraded_reads.to_string()]);
        t.row(vec!["fenced blocks".into(), rd.fenced_blocks.to_string()]);
        t.row(vec!["dead-die reads".into(), rd.dead_die_reads.to_string()]);
        t.row(vec![
            "rerouted transfers".into(),
            rd.rerouted_transfers.to_string(),
        ]);
        let hist: Vec<String> = rd
            .retry_depth_histogram
            .iter()
            .map(u64::to_string)
            .collect();
        t.row(vec!["retry depth 0..4+".into(), hist.join("/")]);
    }
    if let Some(cr) = &r.crash_recovery {
        t.row(vec!["crash at request".into(), cr.at_requests.to_string()]);
        t.row(vec!["crash at cycle".into(), cr.at_cycle.raw().to_string()]);
        t.row(vec![
            "recovery pages scanned".into(),
            cr.pages_scanned.to_string(),
        ]);
        t.row(vec![
            "recovery torn discarded".into(),
            cr.torn_discarded.to_string(),
        ]);
        t.row(vec![
            "recovery stale dropped".into(),
            cr.stale_dropped.to_string(),
        ]);
        t.row(vec![
            "recovery blocks erased".into(),
            cr.blocks_erased.to_string(),
        ]);
        t.row(vec![
            "recovery scan cycles".into(),
            cr.scan_cycles.raw().to_string(),
        ]);
        if r.integrity.is_some() {
            t.row(vec![
                "recovery corrupt quarantined".into(),
                cr.corrupt_quarantined.to_string(),
            ]);
        }
        if r.checkpoint.is_some() {
            t.row(vec![
                "recovery path".into(),
                if cr.fast_path {
                    "fast (checkpoint+journal)".into()
                } else if cr.fallback {
                    "fallback (full scan)".into()
                } else {
                    "full scan".into()
                },
            ]);
            t.row(vec![
                "journal records replayed".into(),
                cr.journal_replayed.to_string(),
            ]);
            t.row(vec![
                "blocks rescanned".into(),
                cr.blocks_rescanned.to_string(),
            ]);
            t.row(vec![
                "scan cycles saved".into(),
                cr.cycles_saved.raw().to_string(),
            ]);
        }
    }
    if let Some(i) = &r.integrity {
        t.row(vec![
            "silent corruptions".into(),
            i.silent_corruptions.to_string(),
        ]);
        t.row(vec!["integrity detected".into(), i.detected.to_string()]);
        t.row(vec!["integrity re-reads".into(), i.rereads.to_string()]);
        t.row(vec![
            "integrity reconstructed".into(),
            i.reconstructed.to_string(),
        ]);
        t.row(vec![
            "integrity quarantined".into(),
            i.quarantined.to_string(),
        ]);
        t.row(vec![
            "poisoned L2 lines".into(),
            i.poisoned_lines.to_string(),
        ]);
    }
    if let Some(e) = &r.endurance {
        t.row(vec![
            "refresh ticks/refreshes".into(),
            format!("{}/{}", e.refresh_ticks, e.refreshes),
        ]);
        t.row(vec![
            "refresh disturb/retention".into(),
            format!("{}/{}", e.disturb_refreshes, e.retention_refreshes),
        ]);
        t.row(vec![
            "refreshed pages".into(),
            e.refreshed_pages.to_string(),
        ]);
        t.row(vec![
            "level migrations".into(),
            e.level_migrations.to_string(),
        ]);
        t.row(vec!["leveled pages".into(), e.leveled_pages.to_string()]);
        t.row(vec![
            "refresh overruns".into(),
            e.refresh_overruns.to_string(),
        ]);
        t.row(vec!["capacity steps".into(), e.capacity_steps.to_string()]);
        t.row(vec!["writes refused".into(), e.writes_refused.to_string()]);
        t.row(vec!["disturb reads".into(), e.disturb_reads.to_string()]);
        t.row(vec![
            "disturb-triggered errors".into(),
            e.disturb_triggered_errors.to_string(),
        ]);
        t.row(vec![
            "wear min/mean/max".into(),
            format!("{:.6}/{:.6}/{:.6}", e.wear_min, e.wear_mean, e.wear_max),
        ]);
        t.row(vec!["wear spread".into(), format!("{:.2}", e.wear_spread)]);
    }
    if let Some(c) = &r.checkpoint {
        t.row(vec![
            "checkpoint ticks/taken".into(),
            format!("{}/{}", c.checkpoint_ticks, c.checkpoints),
        ]);
        t.row(vec![
            "checkpoint pages".into(),
            c.checkpoint_pages.to_string(),
        ]);
        t.row(vec![
            "journal records/pages".into(),
            format!("{}/{}", c.journal_records, c.journal_pages),
        ]);
        t.row(vec!["checkpoint overruns".into(), c.overruns.to_string()]);
        t.row(vec![
            "journal overflows".into(),
            c.journal_overflows.to_string(),
        ]);
        t.row(vec!["checkpoints aborted".into(), c.aborted.to_string()]);
    }
    if let Some(p) = &r.perf {
        t.row(vec![
            "sim wall seconds".into(),
            format!("{:.3}", p.wall_seconds),
        ]);
        t.row(vec!["sim events".into(), p.events.to_string()]);
        t.row(vec![
            "sim events/sec".into(),
            format!("{:.0}", p.events_per_sec),
        ]);
        t.row(vec![
            "sim peak queue depth".into(),
            p.peak_queue_depth.to_string(),
        ]);
        t.row(vec![
            "sim compute/mem events".into(),
            format!("{}/{}", p.compute_events, p.mem_events),
        ]);
        t.row(vec![
            "sim blocked/maint/skipped".into(),
            format!(
                "{}/{}/{}",
                p.blocked_events, p.maintenance_events, p.skipped_events
            ),
        ]);
    }
    if let Some(h) = &r.health {
        t.row(vec!["health ticks".into(), h.health_ticks.to_string()]);
        t.row(vec![
            "suspects flagged".into(),
            h.suspects_flagged.to_string(),
        ]);
        t.row(vec![
            "pages evacuated".into(),
            h.pages_evacuated.to_string(),
        ]);
        t.row(vec![
            "evacuations completed".into(),
            h.evacuations_completed.to_string(),
        ]);
        t.row(vec![
            "rehabilitations".into(),
            h.rehabilitations.to_string(),
        ]);
        t.row(vec![
            "evacuation overruns".into(),
            h.evacuation_overruns.to_string(),
        ]);
        t.row(vec![
            "dead dies fenced".into(),
            h.dead_dies_fenced.to_string(),
        ]);
        t.row(vec![
            "quarantined dies".into(),
            if h.quarantined.is_empty() {
                "none".into()
            } else {
                h.quarantined
                    .iter()
                    .map(|(c, d)| format!("{c}:{d}"))
                    .collect::<Vec<_>>()
                    .join(",")
            },
        ]);
        for d in &h.per_die {
            t.row(vec![
                format!("die {}:{} rd/retry/unc", d.channel, d.die),
                format!(
                    "{}/{}/{} pgm {} (fail {}) erase {} (fail {})",
                    d.reads,
                    d.retry_steps,
                    d.uncorrectable_reads,
                    d.programs,
                    d.program_failures,
                    d.erases,
                    d.erase_failures
                ),
            ]);
        }
    }
    t.print("run result");
}
