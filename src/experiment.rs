//! The high-level experiment API used by examples and benches.

use zng_platforms::{PlatformKind, RunResult, SimConfig, Simulation};
use zng_sim::parallel_map;
use zng_types::Result;
use zng_workloads::{MultiApp, TraceParams};

/// A reusable experiment context: a simulation configuration plus trace
/// parameters.
///
/// # Examples
///
/// ```
/// use zng::{Experiment, PlatformKind};
///
/// let mut exp = Experiment::quick();
/// let zng = exp.run(PlatformKind::Zng, &["betw"])?;
/// let base = exp.run(PlatformKind::ZngBase, &["betw"])?;
/// assert!(zng.ipc > 0.0 && base.ipc > 0.0);
/// # Ok::<(), zng_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    cfg: SimConfig,
    params: TraceParams,
}

impl Experiment {
    /// The benchmark-scale experiment (scaled flash geometry, full trace
    /// volume): what the figure benches use.
    pub fn standard() -> Experiment {
        Experiment {
            cfg: SimConfig::scaled(),
            params: TraceParams::default(),
        }
    }

    /// A fast configuration for examples and doctests (seconds, not
    /// minutes).
    pub fn quick() -> Experiment {
        Experiment {
            cfg: SimConfig::scaled(),
            params: TraceParams {
                total_warps: 32,
                mem_ops_per_warp: 60,
                footprint_pages: 256,
                seed: 42,
            },
        }
    }

    /// Overrides the simulation configuration.
    pub fn with_config(mut self, cfg: SimConfig) -> Experiment {
        self.cfg = cfg;
        self
    }

    /// Overrides the trace parameters.
    pub fn with_params(mut self, params: TraceParams) -> Experiment {
        self.params = params;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Experiment {
        self.params.seed = seed;
        self
    }

    /// The current simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Mutable access to the configuration (sweeps).
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.cfg
    }

    /// The current trace parameters.
    pub fn params(&self) -> &TraceParams {
        &self.params
    }

    /// Builds the mix named by `workloads` under this experiment's
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown workload names.
    pub fn mix(&self, workloads: &[&str]) -> Result<MultiApp> {
        MultiApp::from_names(workloads, &self.params)
    }

    /// Runs `workloads` co-scheduled on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates configuration, workload and simulation errors.
    pub fn run(&mut self, platform: PlatformKind, workloads: &[&str]) -> Result<RunResult> {
        let mix = self.mix(workloads)?;
        self.run_mix(platform, &mix)
    }

    /// Runs a pre-built mix on `platform` (a fresh platform instance per
    /// call, so runs are independent).
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulation errors.
    pub fn run_mix(&mut self, platform: PlatformKind, mix: &MultiApp) -> Result<RunResult> {
        let mut sim = Simulation::new(platform, &self.cfg)?;
        sim.run(mix)
    }

    /// Runs the same mix across several platforms, one scoped worker
    /// thread per run (runs share no state, so they fan out freely);
    /// results come back in the order `platforms` lists them, identical
    /// to the sequential harness.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's error.
    pub fn run_platforms(
        &mut self,
        platforms: &[PlatformKind],
        workloads: &[&str],
    ) -> Result<Vec<RunResult>> {
        let mix = self.mix(workloads)?;
        let cfg = &self.cfg;
        parallel_map(platforms.to_vec(), |p| {
            Simulation::new(p, cfg).and_then(|mut sim| sim.run(&mix))
        })
        .into_iter()
        .collect()
    }

    /// Runs one platform across several workload mixes in parallel
    /// (the shape of every per-figure sweep): results come back in the
    /// order `mixes` lists them.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's error.
    pub fn run_mixes(
        &mut self,
        platform: PlatformKind,
        mixes: &[MultiApp],
    ) -> Result<Vec<RunResult>> {
        let cfg = &self.cfg;
        parallel_map(mixes.iter().collect(), |mix| {
            Simulation::new(platform, cfg).and_then(|mut sim| sim.run(mix))
        })
        .into_iter()
        .collect()
    }

    /// Runs an arbitrary batch of `(platform, configuration, mix)` points
    /// in parallel — the fully general sweep (figure grids that vary the
    /// configuration per point). Results come back in submission order.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's error.
    pub fn run_batch(batch: &[(PlatformKind, SimConfig, MultiApp)]) -> Result<Vec<RunResult>> {
        parallel_map(batch.iter().collect(), |(p, cfg, mix)| {
            Simulation::new(*p, cfg).and_then(|mut sim| sim.run(mix))
        })
        .into_iter()
        .collect()
    }
}

impl Default for Experiment {
    fn default() -> Experiment {
        Experiment::standard()
    }
}

/// Geometric mean of positive values (the paper's cross-workload
/// aggregate); 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert!((zng::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quick_experiment_runs_two_platforms() {
        let mut exp = Experiment::quick();
        let rs = exp
            .run_platforms(&[PlatformKind::Ideal, PlatformKind::Zng], &["betw"])
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.ipc > 0.0));
    }

    #[test]
    fn builder_overrides() {
        let exp = Experiment::quick().with_seed(7);
        assert_eq!(exp.params().seed, 7);
        let mut cfg = SimConfig::tiny();
        cfg.group_size = 2;
        let exp = exp.with_config(cfg);
        assert_eq!(exp.config().group_size, 2);
    }

    #[test]
    fn unknown_workload_surfaces() {
        let mut exp = Experiment::quick();
        assert!(exp.run(PlatformKind::Ideal, &["nope"]).is_err());
    }
}
