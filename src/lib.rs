//! # ZnG — a reproduction of the ISCA 2020 paper
//! *"ZnG: Architecting GPU Multi-Processors with New Flash for Scalable
//! Data Analysis"* (Jie Zhang and Myoungsoo Jung).
//!
//! ZnG replaces all GPU on-board DRAM with ultra-low-latency Z-NAND
//! flash, attaches the flash controllers directly to the GPU
//! interconnect, moves the FTL into the MMU/TLB and the flash row
//! decoders (zero-overhead translation), and buffers reads in a 24 MB
//! STT-MRAM L2 and writes in grouped flash registers. This crate is the
//! facade over a full simulator of that system and all its baselines.
//!
//! ## Quick start
//!
//! ```
//! use zng::{Experiment, PlatformKind};
//!
//! let mut exp = Experiment::quick();
//! let result = exp.run(PlatformKind::Zng, &["betw", "back"])?;
//! println!("ZnG IPC = {:.3}", result.ipc);
//! # Ok::<(), zng_types::Error>(())
//! ```
//!
//! ## Crate map
//!
//! * [`zng_types`] — addresses, time, ids, requests.
//! * [`zng_sim`] — event queue, contention resources, statistics.
//! * [`zng_mem`] — GDDR5 / DDR4 / LPDDR4 / Optane / PCIe models.
//! * [`zng_flash`] — the Z-NAND device: planes, registers, row-decoder
//!   CAM, bus/mesh networks, SWnet/FCnet/NiF register interconnects.
//! * [`zng_ftl`] — page-map FTL + SSD engine; ZnG zero-overhead FTL + GC.
//! * [`zng_ssd`] — HybridGPU's embedded SSD module, discrete NVMe SSD.
//! * [`zng_gpu`] — SMs, warps, coalescer, caches, TLB/MMU, prefetcher.
//! * [`zng_workloads`] — Table II specs and trace synthesis.
//! * [`zng_platforms`] — the seven platforms + Ideal, and the runner.

pub mod experiment;
pub mod report;

pub use experiment::{geomean, Experiment};
pub use report::Table;
pub use zng_flash::DegradingDie;
pub use zng_flash::{FaultConfig, FaultProfile, RegisterTopology};
pub use zng_gpu::PrefetchPolicy;
pub use zng_platforms::{
    Backend, CheckpointConfig, CheckpointSummary, CrashRecoverySummary, DieBreakdown,
    EnduranceConfig, EnduranceSummary, FairShare, HealthConfig, HealthSummary, IntegrityConfig,
    IntegritySummary, PlatformKind, QosConfig, QosSummary, RedundancyConfig, RedundancySummary,
    RunResult, SimConfig, Simulation, MAX_QOS_APPS,
};
pub use zng_types::{Cycle, Error, Result};
pub use zng_workloads::{
    by_name, mixes, standard_mix_names, table2, trace_stats, Class, MultiApp, Suite, TraceParams,
    WorkloadSpec,
};
