//! Cross-crate integration tests: the relative platform behaviours the
//! paper's evaluation depends on must hold end-to-end.
//!
//! These use reduced trace volumes so the whole file runs in seconds; the
//! benches regenerate the full figures.

use zng::{Experiment, PlatformKind, SimConfig, TraceParams};

fn light() -> Experiment {
    Experiment::standard().with_params(TraceParams {
        total_warps: 64,
        mem_ops_per_warp: 300,
        footprint_pages: 1024,
        seed: 42,
    })
}

#[test]
fn ideal_dominates_every_platform() {
    let mut exp = light();
    let ideal = exp.run(PlatformKind::Ideal, &["betw", "back"]).unwrap();
    for kind in PlatformKind::PAPER_PLATFORMS {
        let r = exp.run(kind, &["betw", "back"]).unwrap();
        assert!(
            ideal.ipc > r.ipc,
            "Ideal must dominate {kind}: {} vs {}",
            ideal.ipc,
            r.ipc
        );
    }
}

#[test]
fn zng_beats_hybridgpu_and_hetero() {
    // The paper's headline direction: full ZnG >> HybridGPU > Hetero.
    let mut exp = light();
    let zng = exp.run(PlatformKind::Zng, &["betw", "back"]).unwrap();
    let hybrid = exp.run(PlatformKind::HybridGpu, &["betw", "back"]).unwrap();
    let hetero = exp.run(PlatformKind::Hetero, &["betw", "back"]).unwrap();
    assert!(zng.ipc > 2.0 * hybrid.ipc, "{} vs {}", zng.ipc, hybrid.ipc);
    assert!(hybrid.ipc > hetero.ipc, "{} vs {}", hybrid.ipc, hetero.ipc);
}

#[test]
fn optimizations_stack_up() {
    // base <= rdopt-ish, wropt > base, full ZnG >= wropt (paper Fig. 10).
    let mut exp = light();
    let base = exp.run(PlatformKind::ZngBase, &["betw", "back"]).unwrap();
    let wropt = exp.run(PlatformKind::ZngWropt, &["betw", "back"]).unwrap();
    let full = exp.run(PlatformKind::Zng, &["betw", "back"]).unwrap();
    assert!(wropt.ipc > base.ipc, "{} vs {}", wropt.ipc, base.ipc);
    assert!(full.ipc > wropt.ipc, "{} vs {}", full.ipc, wropt.ipc);
}

#[test]
fn rdopt_raises_l2_hit_rate() {
    let mut exp = light();
    let wropt = exp.run(PlatformKind::ZngWropt, &["betw"]).unwrap();
    let full = exp.run(PlatformKind::Zng, &["betw"]).unwrap();
    assert!(
        full.l2_hit_rate > wropt.l2_hit_rate + 0.1,
        "STT-MRAM + prefetch must lift L2 hits: {} vs {}",
        full.l2_hit_rate,
        wropt.l2_hit_rate
    );
    assert!(
        full.flash_reads_per_page < wropt.flash_reads_per_page,
        "page buffering must cut flash re-reads"
    );
}

#[test]
fn wropt_eliminates_demand_programs_for_read_heavy_apps() {
    let mut exp = light();
    let base = exp.run(PlatformKind::ZngBase, &["betw"]).unwrap();
    let wropt = exp.run(PlatformKind::ZngWropt, &["betw"]).unwrap();
    assert!(
        wropt.flash_programs_per_page < base.flash_programs_per_page,
        "register merging must reduce write redundancy: {} vs {}",
        wropt.flash_programs_per_page,
        base.flash_programs_per_page
    );
}

#[test]
fn runs_are_deterministic_across_instances() {
    let mut a = light();
    let mut b = light();
    let ra = a.run(PlatformKind::Zng, &["bfs1", "gaus"]).unwrap();
    let rb = b.run(PlatformKind::Zng, &["bfs1", "gaus"]).unwrap();
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.instructions, rb.instructions);
    assert_eq!(ra.requests, rb.requests);
    assert_eq!(ra.gcs, rb.gcs);
}

#[test]
fn seed_changes_the_run_but_not_the_shape() {
    let mut a = light().with_seed(1);
    let mut b = light().with_seed(2);
    let ra = a.run(PlatformKind::Zng, &["betw"]).unwrap();
    let rb = b.run(PlatformKind::Zng, &["betw"]).unwrap();
    assert_ne!(ra.cycles, rb.cycles, "different seeds, different runs");
    let ratio = ra.ipc / rb.ipc;
    assert!(
        (0.5..2.0).contains(&ratio),
        "seed must not change the performance regime: {ratio}"
    );
}

#[test]
fn gc_blocks_only_the_victim_app() {
    let mut exp = light();
    exp.config_mut().flash.registers_per_plane = 4;
    exp.config_mut().group_size = 2;
    let params = TraceParams {
        total_warps: 64,
        mem_ops_per_warp: 500,
        footprint_pages: 4096,
        seed: 42,
    };
    let mut exp = exp.with_params(params);
    let r = exp.run(PlatformKind::Zng, &["betw", "back"]).unwrap();
    assert!(r.gcs > 0, "this configuration must GC");
    // betw (app 0) completes long before back (app 1) drags through GC.
    let betw_done = r.per_app_cycles[&0];
    let back_done = r.per_app_cycles[&1];
    assert!(
        back_done.raw() > betw_done.raw() * 2,
        "GC tail must belong to back: {betw_done:?} vs {back_done:?}"
    );
}

#[test]
fn free_gc_counterfactual_is_faster() {
    let params = TraceParams {
        total_warps: 64,
        mem_ops_per_warp: 500,
        footprint_pages: 4096,
        seed: 42,
    };
    let mut exp = Experiment::standard().with_params(params);
    exp.config_mut().flash.registers_per_plane = 4;
    exp.config_mut().group_size = 2;
    let with_gc = exp.run(PlatformKind::Zng, &["betw", "back"]).unwrap();
    exp.config_mut().free_gc = true;
    let without = exp.run(PlatformKind::Zng, &["betw", "back"]).unwrap();
    assert!(with_gc.gcs > 0);
    assert!(without.cycles < with_gc.cycles);
    assert_eq!(without.instructions, with_gc.instructions);
}

#[test]
fn invalid_configurations_are_rejected() {
    let mut cfg = SimConfig::scaled();
    cfg.flash.channels = 0;
    assert!(zng::Simulation::new(PlatformKind::Zng, &cfg).is_err());
    let mut cfg = SimConfig::scaled();
    cfg.gpu.l2_banks = 0;
    assert!(zng::Simulation::new(PlatformKind::Ideal, &cfg).is_err());
}

#[test]
fn request_accounting_is_consistent() {
    let mut exp = light();
    let r = exp.run(PlatformKind::Optane, &["bfs2", "FDT"]).unwrap();
    assert_eq!(
        r.per_app_requests.values().sum::<u64>(),
        r.requests,
        "per-app requests must partition the total"
    );
    assert_eq!(r.per_app_instructions.values().sum::<u64>(), r.instructions);
    let series_total: u64 = r.per_app_series.values().flatten().sum();
    assert_eq!(series_total, r.requests);
}
