//! Redundancy & self-healing property tests (the PR's headline
//! invariant).
//!
//! For an arbitrary workload, an arbitrary single die failed at an
//! arbitrary point in the write stream, on both FTLs:
//!
//! 1. **No acked write lost**: every write acknowledged before the
//!    failure stays readable afterwards — degraded reads reconstruct
//!    from the surviving stripe members, and the mapping still resolves
//!    to the acked version (OOB key matches, stamp never rolls back).
//! 2. **Rebuild restores**: after [`ZngFtl::rebuild_dead_die`] /
//!    [`PageMapFtl::rebuild_dead_die`], every logical page maps to a
//!    live die and reads stop touching the dead one.
//! 3. **Scrub pacing**: a patrol-scrub step never blocks the foreground
//!    past the configured stall budget, and scrubbing never loses data.
//! 4. **Determinism**: the whole degraded lifecycle (fail → fence →
//!    degraded writes → scrub → rebuild) on two clones of the same
//!    device produces identical timings, mappings and counters.
//! 5. **Redundancy off is inert**: with no redundancy installed the
//!    device never grows parity blocks, the run is bit-deterministic,
//!    and the FTL reports no redundancy state.
//!
//! The simulator carries no payload bytes, so "exact last-acked data"
//! is judged the same way the crash suite judges durability: through
//! mapping and OOB-stamp identity (`key == lpn`, `seq` monotone).

use std::collections::HashMap;

use proptest::prelude::*;
use zng_flash::{BlockKind, FaultConfig, FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{GcPacing, PageMapFtl, RainConfig, WriteMode, ZngFtl};
use zng_types::{
    ids::{ChannelId, DieId},
    Cycle, Error, FlashAddr, Freq,
};

fn device(profile: u8, seed: u64) -> FlashDevice {
    let mut d = FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap();
    let cfg = match profile {
        0 => FaultConfig::none(),
        1 => FaultConfig::nominal().with_seed(seed),
        _ => FaultConfig::end_of_life().with_seed(seed),
    };
    d.set_fault_config(&cfg);
    d
}

enum Ftl {
    Zng(ZngFtl),
    Map(PageMapFtl),
}

impl Ftl {
    fn new(d: &FlashDevice, mode: Option<WriteMode>, rain: RainConfig) -> Ftl {
        let mut f = match mode {
            Some(m) => Ftl::Zng(ZngFtl::new(d, 2, m)),
            None => Ftl::Map(PageMapFtl::new(d)),
        };
        f.set_redundancy(d, Some(rain));
        f
    }

    fn set_redundancy(&mut self, d: &FlashDevice, config: Option<RainConfig>) {
        match self {
            Ftl::Zng(f) => f.set_redundancy(d, config),
            Ftl::Map(f) => f.set_redundancy(d, config),
        }
    }

    fn write(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.write(now, d, lpn).map(|r| r.done),
            Ftl::Map(f) => f.write_page(now, d, lpn),
        }
    }

    fn read(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.read(now, d, lpn, 128),
            Ftl::Map(f) => f.read_page(now, d, lpn, 128),
        }
    }

    fn locate(&self, lpn: u64) -> Option<FlashAddr> {
        match self {
            Ftl::Zng(f) => f.locate(lpn),
            Ftl::Map(f) => f.translate(lpn),
        }
    }

    fn fence_dead_die(&mut self, now: Cycle, d: &mut FlashDevice) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.fence_dead_die(now, d),
            Ftl::Map(f) => f.fence_dead_die(now, d),
        }
    }

    fn rebuild_dead_die(
        &mut self,
        now: Cycle,
        d: &mut FlashDevice,
    ) -> zng_types::Result<(Cycle, u64)> {
        match self {
            Ftl::Zng(f) => f.rebuild_dead_die(now, d),
            Ftl::Map(f) => f.rebuild_dead_die(now, d),
        }
    }

    fn scrub_step(&mut self, now: Cycle, d: &mut FlashDevice) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.scrub_step(now, d),
            Ftl::Map(f) => f.scrub_step(now, d),
        }
    }

    fn counters(&self) -> Option<zng_ftl::RainCounters> {
        match self {
            Ftl::Zng(f) => f.redundancy().map(|r| r.counters()),
            Ftl::Map(f) => f.redundancy().map(|r| r.counters()),
        }
    }

    fn recover(
        &mut self,
        now: Cycle,
        d: &mut FlashDevice,
    ) -> zng_types::Result<zng_ftl::RecoveryReport> {
        match self {
            Ftl::Zng(f) => f.recover(now, d),
            Ftl::Map(f) => f.recover(now, d),
        }
    }

    fn clone_box(&self) -> Ftl {
        match self {
            Ftl::Zng(f) => Ftl::Zng(f.clone()),
            Ftl::Map(f) => Ftl::Map(f.clone()),
        }
    }
}

/// No logical page may ever resolve into a parity block: parity is
/// reconstruction input, never mappable data (a crash that interrupts
/// parity maintenance must not resurrect it as a winner).
fn assert_no_parity_mapped(
    f: &Ftl,
    d: &FlashDevice,
    lpns: impl Iterator<Item = u64>,
    what: &str,
) -> Result<(), TestCaseError> {
    for lpn in lpns {
        if let Some(addr) = f.locate(lpn) {
            if let Some(b) = d.block(addr.block) {
                prop_assert!(
                    b.kind() != BlockKind::Parity,
                    "{what}: lpn {lpn} maps into a parity block"
                );
            }
        }
    }
    Ok(())
}

/// Stamp snapshot (`lpn -> seq`) of every acked logical page, taken
/// through the FTL's own mapping. Pages whose mapping or stamp is
/// unavailable (register-resident data) are left out.
fn acked_stamps(f: &Ftl, d: &FlashDevice, acked: &HashMap<u64, u64>) -> HashMap<u64, u64> {
    acked
        .keys()
        .filter_map(|&lpn| {
            let addr = f.locate(lpn)?;
            let (key, seq) = d.page_stamp(addr)?;
            (key == lpn).then_some((lpn, seq))
        })
        .collect()
}

/// Asserts every baseline page still resolves to data no older than its
/// acked version and is readable end-to-end. `strict` (fault-free media)
/// forbids read errors outright; faulty media may legitimately lose a
/// second stripe member, so there only torn-page serving and protocol
/// errors are failures.
fn check_readable(
    f: &mut Ftl,
    d: &mut FlashDevice,
    now: Cycle,
    baseline: &HashMap<u64, u64>,
    strict: bool,
    what: &str,
) -> Result<(), TestCaseError> {
    for (&lpn, &seq) in baseline {
        let addr = f.locate(lpn);
        prop_assert!(addr.is_some(), "{what}: lpn {lpn} lost its mapping");
        let addr = addr.unwrap();
        let stamp = d.page_stamp(addr);
        prop_assert!(stamp.is_some(), "{what}: lpn {lpn} maps to unstamped media");
        let (key, got) = stamp.unwrap();
        prop_assert_eq!(key, lpn, "{}: lpn {} resolves to foreign data", what, lpn);
        prop_assert!(
            got >= seq,
            "{what}: lpn {lpn} rolled back past the acked version ({got} < {seq})"
        );
        match f.read(now, d, lpn) {
            Ok(_) => {}
            Err(Error::UncorrectableRead { .. }) if !strict => {}
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "{what}: read of acked lpn {lpn} failed: {e}"
                )))
            }
        }
    }
    Ok(())
}

/// The full degraded lifecycle: write, fail one die mid-stream, keep
/// writing in degraded mode, verify, rebuild, verify again.
fn check_die_failure(
    profile: u8,
    seed: u64,
    writes: &[u64],
    fail_at: usize,
    ch: u16,
    die: u16,
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let strict = profile == 0;
    let mut d = device(profile, seed);
    let mut f = Ftl::new(&d, mode, RainConfig::default());

    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut t = Cycle::ZERO;
    let fail_at = fail_at.min(writes.len());
    for &lpn in &writes[..fail_at] {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                *acked.entry(lpn).or_insert(0) += 1;
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
    }
    let baseline = acked_stamps(&f, &d, &acked);

    // The failure: one die dies at an arbitrary instant; the FTL fences
    // it and (for the ZnG FTL) relocates log blocks that would otherwise
    // hard-fail writes.
    d.fail_die(ChannelId(ch), DieId(die));
    match f.fence_dead_die(t, &mut d) {
        Ok(done) => t = done,
        Err(Error::UncorrectableRead { .. }) if !strict => return Ok(()),
        Err(e) => return Err(TestCaseError::fail(format!("fence failed: {e}"))),
    }

    // Degraded-mode operation: the remaining writes must still land (the
    // allocator fences dead blocks, so only media faults may fail them).
    for &lpn in &writes[fail_at..] {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                *acked.entry(lpn).or_insert(0) += 1;
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) if !strict => {}
            Err(e) => return Err(TestCaseError::fail(format!("degraded write failed: {e}"))),
        }
    }

    // Invariant 1: nothing acked before the failure was lost, and the
    // degraded writes are visible too.
    let baseline = {
        let mut b = baseline;
        for (lpn, seq) in acked_stamps(&f, &d, &acked) {
            let e = b.entry(lpn).or_insert(seq);
            *e = (*e).max(seq);
        }
        b
    };
    check_readable(&mut f, &mut d, t + Cycle(1), &baseline, strict, "degraded")?;

    // Invariant 2: a rebuild re-creates the lost blocks on spares; all
    // mappings move off the dead die and reads stop touching it.
    let (done, _pages) = match f.rebuild_dead_die(t, &mut d) {
        Ok(r) => r,
        Err(Error::UncorrectableRead { .. }) if !strict => return Ok(()),
        Err(e) => return Err(TestCaseError::fail(format!("rebuild failed: {e}"))),
    };
    t = done + Cycle(1);
    for &lpn in baseline.keys() {
        if let Some(addr) = f.locate(lpn) {
            prop_assert!(
                !d.die_is_dead(addr.block.channel, addr.block.die),
                "lpn {lpn} still maps to the dead die after rebuild"
            );
        }
    }
    let rebuilt = acked_stamps(&f, &d, &acked);
    check_readable(&mut f, &mut d, t, &rebuilt, strict, "rebuilt")?;
    if strict {
        let dead_before = d.dead_die_reads();
        for &lpn in baseline.keys() {
            f.read(t, &mut d, lpn)
                .map_err(|e| TestCaseError::fail(format!("post-rebuild read failed: {e}")))?;
        }
        prop_assert_eq!(
            d.dead_die_reads(),
            dead_before,
            "reads still touch the dead die after rebuild"
        );
    }
    Ok(())
}

/// Patrol scrub under a pacing contract: the foreground stall never
/// exceeds the budget and no scrubbed (possibly rewritten) page loses
/// its acked version.
fn check_scrub(
    profile: u8,
    seed: u64,
    writes: &[u64],
    steps: usize,
    threshold: u32,
    budget: u64,
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let strict = profile == 0;
    let mut d = device(profile, seed);
    let rain = RainConfig {
        scrub_threshold: threshold,
        pacing: Some(GcPacing {
            stall_budget: Cycle(budget),
            credit_writes: 4,
        }),
    };
    let mut f = Ftl::new(&d, mode, rain);

    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut t = Cycle::ZERO;
    for &lpn in writes {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                *acked.entry(lpn).or_insert(0) += 1;
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
    }
    let baseline = acked_stamps(&f, &d, &acked);

    let before = f.counters().expect("redundancy installed");
    for _ in 0..steps {
        let horizon = match f.scrub_step(t, &mut d) {
            Ok(h) => h,
            Err(Error::UncorrectableRead { .. }) if !strict => continue,
            Err(e) => return Err(TestCaseError::fail(format!("scrub step failed: {e}"))),
        };
        // Invariant 3: the step blocks the foreground no longer than the
        // stall budget, whatever its media time was.
        prop_assert!(
            horizon <= t + Cycle(budget),
            "scrub stalled past its budget: {:?} > {:?} + {budget}",
            horizon,
            t
        );
        t = horizon.max(t) + Cycle(1);
    }
    let after = f.counters().expect("redundancy installed");
    prop_assert!(
        after.scrub_scanned >= before.scrub_scanned,
        "scrub counter went backwards"
    );

    // Scrub rewrites must never lose data (they relocate, re-stamp, and
    // only then invalidate).
    check_readable(&mut f, &mut d, t, &baseline, strict, "scrubbed")
}

/// Two clones of the same device driven through the identical
/// fail/fence/scrub/rebuild sequence must agree bit-for-bit.
fn check_determinism(
    profile: u8,
    seed: u64,
    writes: &[u64],
    fail_at: usize,
    scrub_steps: usize,
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let run = |d: &mut FlashDevice, f: &mut Ftl| -> zng_types::Result<Vec<Cycle>> {
        let mut trace = Vec::new();
        let mut t = Cycle::ZERO;
        let fail_at = fail_at.min(writes.len());
        for (i, &lpn) in writes.iter().enumerate() {
            if i == fail_at {
                d.fail_die(ChannelId(1), DieId(0));
                t = f.fence_dead_die(t, d)?;
                trace.push(t);
            }
            match f.write(t, d, lpn) {
                Ok(done) => t = done,
                Err(Error::DeviceWornOut { .. }) => break,
                Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => return Err(e),
            }
            trace.push(t);
        }
        for _ in 0..scrub_steps {
            match f.scrub_step(t, d) {
                Ok(h) => t = h.max(t) + Cycle(1),
                Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => return Err(e),
            }
            trace.push(t);
        }
        let (done, pages) = f.rebuild_dead_die(t, d)?;
        trace.push(done);
        trace.push(Cycle(pages));
        Ok(trace)
    };

    let mut d1 = device(profile, seed);
    let mut f1 = Ftl::new(&d1, mode, RainConfig::default());
    let mut d2 = d1.clone();
    let mut f2 = f1.clone_box();

    let t1 = run(&mut d1, &mut f1);
    let t2 = run(&mut d2, &mut f2);
    match (t1, t2) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a, b, "degraded lifecycle timings diverged");
            prop_assert_eq!(f1.counters(), f2.counters(), "counters diverged");
            for &lpn in writes {
                prop_assert_eq!(f1.locate(lpn), f2.locate(lpn), "mapping diverged");
            }
            prop_assert_eq!(
                d1.dead_die_reads(),
                d2.dead_die_reads(),
                "dead-die read accounting diverged"
            );
            let h1 = d1.stats().retry_depth_histogram();
            let h2 = d2.stats().retry_depth_histogram();
            prop_assert_eq!(h1, h2, "retry-depth histograms diverged");
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(a.to_string(), b.to_string(), "clones failed differently");
        }
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "only one clone failed: {a:?} vs {b:?}"
            )))
        }
    }
    Ok(())
}

/// With redundancy off the write path must be exactly the old one: no
/// parity blocks, no redundancy state, and bit-identical repeat runs.
fn check_off_is_inert(
    profile: u8,
    seed: u64,
    writes: &[u64],
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let run = |writes: &[u64]| -> (Vec<Cycle>, FlashDevice, Ftl) {
        let mut d = device(profile, seed);
        let mut f = match mode {
            Some(m) => Ftl::Zng(ZngFtl::new(&d, 2, m)),
            None => Ftl::Map(PageMapFtl::new(&d)),
        };
        let mut trace = Vec::new();
        let mut t = Cycle::ZERO;
        for &lpn in writes {
            match f.write(t, &mut d, lpn) {
                Ok(done) => t = done,
                Err(Error::DeviceWornOut { .. }) => break,
                Err(_) => {}
            }
            trace.push(t);
        }
        (trace, d, f)
    };
    let (trace1, d1, f1) = run(writes);
    let (trace2, d2, _f2) = run(writes);
    prop_assert_eq!(trace1, trace2, "redundancy-off run is not deterministic");
    prop_assert!(f1.counters().is_none(), "redundancy state grew unasked");
    let geo = *d1.geometry();
    for idx in 0..geo.total_blocks() as u64 {
        let addr = geo.block_for_index(idx).expect("valid index");
        if let Some(b) = d1.block(addr) {
            prop_assert!(
                b.kind() != BlockKind::Parity,
                "parity block allocated with redundancy off"
            );
        }
    }
    let h1 = d1.stats().retry_depth_histogram();
    let h2 = d2.stats().retry_depth_histogram();
    prop_assert_eq!(h1, h2, "stats diverged between identical runs");
    prop_assert_eq!(d1.stats().total_programs(), d2.stats().total_programs());
    Ok(())
}

/// A power cut in the middle of a patrol-scrub step: the interrupted
/// relocations must tear away cleanly — after OOB-scan recovery every
/// settled write is still readable at no older a version, and no stale
/// parity is resurrected as data.
fn check_crash_mid_scrub(
    profile: u8,
    seed: u64,
    writes: &[u64],
    threshold: u32,
    cut_pct: u64,
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let strict = profile == 0;
    let mut d = device(profile, seed);
    let rain = RainConfig {
        scrub_threshold: threshold,
        pacing: None,
    };
    let mut f = Ftl::new(&d, mode, rain);

    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut t = Cycle::ZERO;
    for &lpn in writes {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                *acked.entry(lpn).or_insert(0) += 1;
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
    }
    // Settle the background programs: every acked write is durable, so
    // the cut below can only interrupt the scrub's own relocations.
    t += Cycle(10_000_000);
    let baseline = acked_stamps(&f, &d, &acked);

    let horizon = match f.scrub_step(t, &mut d) {
        Ok(h) => h,
        Err(Error::UncorrectableRead { .. }) if !strict => return Ok(()),
        Err(e) => return Err(TestCaseError::fail(format!("scrub step failed: {e}"))),
    };
    let span = horizon.raw().saturating_sub(t.raw());
    let t_cut = Cycle(t.raw() + span * cut_pct.min(99) / 100);
    d.power_loss(t_cut);
    let report = f
        .recover(t_cut, &mut d)
        .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;
    let t_after = t_cut + report.scan_cycles + Cycle(1);

    check_readable(&mut f, &mut d, t_after, &baseline, strict, "mid-scrub cut")?;
    assert_no_parity_mapped(&f, &d, baseline.keys().copied(), "mid-scrub cut")
}

/// A power cut in the middle of a dead-die rebuild: half-recreated
/// spare copies tear away, the originals (reconstructable from the
/// surviving members) win again, and no parity block is mapped as data.
fn check_crash_mid_rebuild(
    profile: u8,
    seed: u64,
    writes: &[u64],
    fail_at: usize,
    cut_pct: u64,
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let strict = profile == 0;
    let mut d = device(profile, seed);
    let mut f = Ftl::new(&d, mode, RainConfig::default());

    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut t = Cycle::ZERO;
    let fail_at = fail_at.min(writes.len());
    for &lpn in &writes[..fail_at] {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                *acked.entry(lpn).or_insert(0) += 1;
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
    }
    d.fail_die(ChannelId(1), DieId(0));
    match f.fence_dead_die(t, &mut d) {
        Ok(done) => t = done,
        Err(Error::UncorrectableRead { .. }) if !strict => return Ok(()),
        Err(e) => return Err(TestCaseError::fail(format!("fence failed: {e}"))),
    }
    // Settle, snapshot the durable state, then interrupt the rebuild.
    t += Cycle(10_000_000);
    let baseline = acked_stamps(&f, &d, &acked);
    // Pages still sitting on the dead die when the power cut lands are
    // the double-fault window of single-parity RAIN: the crash wipes the
    // open stripes, so nothing can reconstruct them afterwards. Their
    // loss is tolerated; everything on healthy media must survive.
    let on_dead_die: std::collections::HashSet<u64> = baseline
        .keys()
        .copied()
        .filter(|&lpn| {
            f.locate(lpn)
                .is_some_and(|a| d.die_is_dead(a.block.channel, a.block.die))
        })
        .collect();
    let (done, _pages) = match f.rebuild_dead_die(t, &mut d) {
        Ok(r) => r,
        Err(Error::UncorrectableRead { .. }) if !strict => return Ok(()),
        Err(e) => return Err(TestCaseError::fail(format!("rebuild failed: {e}"))),
    };
    let span = done.raw().saturating_sub(t.raw());
    let t_cut = Cycle(t.raw() + span * cut_pct.min(99) / 100);
    d.power_loss(t_cut);
    let report = f
        .recover(t_cut, &mut d)
        .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;
    let t_after = t_cut + report.scan_cycles + Cycle(1);

    for (&lpn, &seq) in &baseline {
        let Some(addr) = f.locate(lpn) else {
            prop_assert!(
                on_dead_die.contains(&lpn),
                "mid-rebuild cut: lpn {lpn} on healthy media lost its mapping"
            );
            continue;
        };
        let stamp = d.page_stamp(addr);
        prop_assert!(
            stamp.is_some(),
            "mid-rebuild cut: lpn {lpn} maps to unstamped media"
        );
        let (key, got) = stamp.unwrap();
        prop_assert_eq!(
            key,
            lpn,
            "mid-rebuild cut: lpn {} resolves to foreign data",
            lpn
        );
        prop_assert!(
            got >= seq,
            "mid-rebuild cut: lpn {lpn} rolled back past the acked version ({got} < {seq})"
        );
        match f.read(t_after, &mut d, lpn) {
            Ok(_) => {}
            Err(Error::UncorrectableRead { .. }) if !strict => {}
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "mid-rebuild cut: read of acked lpn {lpn} failed: {e}"
                )))
            }
        }
    }
    assert_no_parity_mapped(&f, &d, baseline.keys().copied(), "mid-rebuild cut")
}

proptest! {
    /// ZnG FTL, direct writes: a single die failure at any point loses
    /// no acked write; rebuild moves everything off the dead die.
    #[test]
    fn zng_survives_die_failure(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..60),
        fail_at in 0usize..60,
        ch in 0u16..4,
        die in 0u16..2,
    ) {
        check_die_failure(profile, seed, &writes, fail_at, ch, die, Some(WriteMode::Direct))?;
    }

    /// Conventional page-map FTL: same single-die-failure guarantee.
    #[test]
    fn pagemap_survives_die_failure(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..192, 1..60),
        fail_at in 0usize..60,
        ch in 0u16..4,
        die in 0u16..2,
    ) {
        check_die_failure(profile, seed, &writes, fail_at, ch, die, None)?;
    }

    /// ZnG FTL: patrol scrub respects the pacing budget and loses
    /// nothing, for arbitrary thresholds and budgets.
    #[test]
    fn zng_scrub_respects_pacing(
        profile in 0u8..2,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..48),
        steps in 1usize..24,
        threshold in 0u32..4,
        budget in 1_000u64..80_000,
    ) {
        check_scrub(profile, seed, &writes, steps, threshold, budget, Some(WriteMode::Direct))?;
    }

    /// Page-map FTL: same scrub pacing contract.
    #[test]
    fn pagemap_scrub_respects_pacing(
        profile in 0u8..2,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..192, 1..48),
        steps in 1usize..24,
        threshold in 0u32..4,
        budget in 1_000u64..80_000,
    ) {
        check_scrub(profile, seed, &writes, steps, threshold, budget, None)?;
    }

    /// The degraded lifecycle is bit-deterministic on both FTLs (the
    /// buffered ZnG mode included) under every fault profile.
    #[test]
    fn degraded_lifecycle_is_deterministic(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..48),
        fail_at in 0usize..48,
        scrub_steps in 0usize..8,
        flavor in 0u8..3,
    ) {
        let mode = match flavor {
            0 => Some(WriteMode::Direct),
            1 => Some(WriteMode::Buffered),
            _ => None,
        };
        check_determinism(profile, seed, &writes, fail_at, scrub_steps, mode)?;
    }

    /// A crash in the middle of a patrol-scrub step loses no acked
    /// write and never resurrects a parity block as mapped data.
    #[test]
    fn zng_crash_mid_scrub_loses_nothing(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..48),
        threshold in 0u32..4,
        cut_pct in 0u64..100,
        flavor in 0u8..2,
    ) {
        let mode = match flavor {
            0 => Some(WriteMode::Direct),
            _ => Some(WriteMode::Buffered),
        };
        check_crash_mid_scrub(profile, seed, &writes, threshold, cut_pct, mode)?;
    }

    /// Page-map FTL: same mid-scrub crash contract.
    #[test]
    fn pagemap_crash_mid_scrub_loses_nothing(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..192, 1..48),
        threshold in 0u32..4,
        cut_pct in 0u64..100,
    ) {
        check_crash_mid_scrub(profile, seed, &writes, threshold, cut_pct, None)?;
    }

    /// A crash in the middle of a dead-die rebuild: the half-built
    /// spare copies tear away and every acked write stays readable.
    #[test]
    fn zng_crash_mid_rebuild_loses_nothing(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..48),
        fail_at in 0usize..48,
        cut_pct in 0u64..100,
    ) {
        check_crash_mid_rebuild(profile, seed, &writes, fail_at, cut_pct, Some(WriteMode::Direct))?;
    }

    /// Page-map FTL: same mid-rebuild crash contract.
    #[test]
    fn pagemap_crash_mid_rebuild_loses_nothing(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..192, 1..48),
        fail_at in 0usize..48,
        cut_pct in 0u64..100,
    ) {
        check_crash_mid_rebuild(profile, seed, &writes, fail_at, cut_pct, None)?;
    }

    /// Redundancy off = the previous write path, bit for bit.
    #[test]
    fn redundancy_off_is_inert(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..60),
        flavor in 0u8..3,
    ) {
        let mode = match flavor {
            0 => Some(WriteMode::Direct),
            1 => Some(WriteMode::Buffered),
            _ => None,
        };
        check_off_is_inert(profile, seed, &writes, mode)?;
    }
}
