//! Predictive-health property tests (the PR's headline invariants).
//!
//! A die that is slowly dying gets flagged by the health monitor,
//! quarantined, and pre-emptively evacuated while the workload runs.
//! Three things must hold on both FTLs, under any fault profile, with
//! RAIN on or off, and across arbitrary crash points:
//!
//! 1. **No acked write lost**: quarantine fencing and evacuation
//!    migrations never drop or misdirect a mapping — every acknowledged
//!    write is still mapped to its own data after a power cut and
//!    recovery, even when the cut lands mid-evacuation.
//! 2. **Evacuation beats the failure**: once the monitor reports the
//!    evacuation complete, the die can drop dead outright and not a
//!    single read touches it again.
//! 3. **Monitoring is inert on healthy hardware**: with no degrading
//!    die and no faults, the monitor flags nothing, moves nothing, and
//!    the mapping state is identical to a twin that never ran it.

use std::collections::HashSet;

use proptest::prelude::*;
use zng_flash::{DegradingDie, FaultConfig, FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{HealthPolicy, PageMapFtl, RainConfig, WriteMode, ZngFtl};
use zng_types::{Cycle, Error, Freq};

/// A hair-trigger policy: the degrading die is flagged on its first
/// telemetry blip and evacuated immediately, so even short generated
/// workloads exercise quarantine and migration.
fn hair_trigger() -> HealthPolicy {
    HealthPolicy {
        window: 4,
        suspect_threshold: 0.0005,
        evacuate: true,
        pacing: None,
    }
}

fn device(profile: u8, seed: u64, degrading: Option<DegradingDie>) -> FlashDevice {
    let mut d = FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap();
    // The seed also feeds the degrading die's RNG stream, so even the
    // fault-free profile varies across cases.
    let mut cfg = match profile {
        0 => FaultConfig::none().with_seed(seed),
        1 => FaultConfig::nominal().with_seed(seed),
        _ => FaultConfig::end_of_life().with_seed(seed),
    };
    if let Some(dd) = degrading {
        cfg = cfg.with_degrading(dd);
    }
    d.set_fault_config(&cfg);
    d
}

enum Ftl {
    Zng(ZngFtl),
    Map(PageMapFtl),
}

impl Ftl {
    fn new(zng: bool, d: &FlashDevice, rain: bool) -> Ftl {
        let mut f = if zng {
            Ftl::Zng(ZngFtl::new(d, 2, WriteMode::Direct))
        } else {
            Ftl::Map(PageMapFtl::new(d))
        };
        if rain {
            match &mut f {
                Ftl::Zng(z) => z.set_redundancy(d, Some(RainConfig::default())),
                Ftl::Map(m) => m.set_redundancy(d, Some(RainConfig::default())),
            }
        }
        f
    }

    fn write(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.write(now, d, lpn).map(|r| r.done),
            Ftl::Map(f) => f.write_page(now, d, lpn),
        }
    }

    fn read(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.read(now, d, lpn, 128),
            Ftl::Map(f) => f.read_page(now, d, lpn, 128),
        }
    }

    fn locate(&self, lpn: u64) -> Option<zng_types::FlashAddr> {
        match self {
            Ftl::Zng(f) => f.locate(lpn),
            Ftl::Map(f) => f.translate(lpn),
        }
    }

    fn free_blocks(&self) -> u64 {
        match self {
            Ftl::Zng(f) => f.free_blocks(),
            Ftl::Map(f) => f.free_blocks(),
        }
    }

    fn recover(
        &mut self,
        now: Cycle,
        d: &mut FlashDevice,
    ) -> zng_types::Result<zng_ftl::RecoveryReport> {
        match self {
            Ftl::Zng(f) => f.recover(now, d),
            Ftl::Map(f) => f.recover(now, d),
        }
    }

    fn set_health(&mut self, policy: Option<HealthPolicy>) {
        match self {
            Ftl::Zng(f) => f.set_health(policy),
            Ftl::Map(f) => f.set_health(policy),
        }
    }

    fn health_step(&mut self, now: Cycle, d: &mut FlashDevice) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.health_step(now, d),
            Ftl::Map(f) => f.health_step(now, d),
        }
    }

    fn health_counters(&self) -> zng_ftl::HealthCounters {
        match self {
            Ftl::Zng(f) => f.health_counters(),
            Ftl::Map(f) => f.health_counters(),
        }
        .unwrap_or_default()
    }
}

/// Invariant 1: a degrading die, a hair-trigger monitor, and a power
/// cut at an arbitrary point (including mid-evacuation) never lose an
/// acknowledged write — after recovery every acked logical page is
/// still mapped to its own data, never to a torn page or foreign key.
fn check_no_acked_write_lost(
    zng: bool,
    profile: u8,
    seed: u64,
    writes: &[u64],
    crash_at: usize,
    rain: bool,
) -> Result<(), TestCaseError> {
    // A long, shallow ramp: noisy enough to trip the hair trigger, but
    // the die never actually dies within test time.
    let dd = DegradingDie {
        channel: 0,
        die: 0,
        onset: 0,
        death: 200_000_000,
    };
    let mut d = device(profile, seed, Some(dd));
    let mut f = Ftl::new(zng, &d, rain);
    f.set_health(Some(hair_trigger()));

    let crash_at = crash_at.min(writes.len());
    let mut t = Cycle::ZERO;
    let mut acked: HashSet<u64> = HashSet::new();
    for &lpn in &writes[..crash_at] {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                acked.insert(lpn);
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) => {}
            // A redrive-exhausted write on the noisy die was never
            // acked, so it creates no durability obligation.
            Err(Error::FlashProtocol { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
        t = f
            .health_step(t, &mut d)
            .map_err(|e| TestCaseError::fail(format!("health step failed: {e}")))?;
    }

    // A settled cut: every acked program has completed, so every acked
    // write is a durability obligation.
    let t_cut = t + Cycle(10_000_000);
    d.power_loss(t_cut);
    f.recover(t_cut, &mut d)
        .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;

    let t_after = t_cut + Cycle(1);
    for &lpn in &acked {
        let addr = f.locate(lpn);
        prop_assert!(addr.is_some(), "acked lpn {lpn} lost its mapping");
        let addr = addr.unwrap();
        prop_assert!(
            !d.page_is_torn(addr),
            "acked lpn {lpn} mapped to a torn page"
        );
        let stamp = d.page_stamp(addr);
        prop_assert!(stamp.is_some(), "acked lpn {lpn} mapped to unstamped media");
        let (key, _) = stamp.unwrap();
        prop_assert_eq!(key, lpn, "acked lpn {} resolves to foreign data", lpn);
        match f.read(t_after, &mut d, lpn) {
            // Media errors under injected fault profiles are allowed;
            // serving a torn page or losing the mapping is not.
            Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
            Err(Error::TornPage { .. }) => {
                return Err(TestCaseError::fail(format!("torn page served for {lpn}")))
            }
            Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
        }
    }
    Ok(())
}

/// Invariant 2: once the monitor reports the evacuation complete, the
/// die can drop dead outright and no read ever touches it again.
fn check_evacuation_beats_death(
    zng: bool,
    seed: u64,
    writes: &[u64],
) -> Result<zng_ftl::HealthCounters, TestCaseError> {
    const DEATH: u64 = 80_000_000;

    // Dry run on a healthy twin to find the die the allocator loads
    // most: degrading *that* die guarantees the evacuation has real
    // work (the RAIN layout shifts data placement, so a fixed victim
    // could end up holding only parity).
    let (victim_ch, victim_die) = {
        let mut d = device(0, seed, None);
        let mut f = Ftl::new(zng, &d, true);
        let mut t = Cycle::ZERO;
        let mut per_die = std::collections::BTreeMap::new();
        for &lpn in writes {
            if let Ok(done) = f.write(t, &mut d, lpn) {
                t = done;
            }
        }
        for &lpn in writes {
            if let Some(a) = f.locate(lpn) {
                let key = (a.block.channel.index() as u16, a.block.die.index() as u16);
                *per_die.entry(key).or_insert(0u32) += 1;
            }
        }
        per_die
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map_or((0, 0), |(k, _)| k)
    };
    let dd = DegradingDie {
        channel: victim_ch,
        die: victim_die,
        onset: 0,
        death: DEATH,
    };
    // Fault-free background: the degrading die is the only telemetry
    // source, so the hair trigger quarantines it and nothing else.
    // (Organic fault profiles are lane 1's concern; under end-of-life
    // noise a hair trigger would quarantine every die on the device.)
    let mut d = device(0, seed, Some(dd));
    let mut f = Ftl::new(zng, &d, true);
    f.set_health(Some(hair_trigger()));

    let mut t = Cycle::ZERO;
    let mut acked: Vec<u64> = Vec::new();
    for &lpn in writes {
        match f.write(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                acked.push(lpn);
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. } | Error::FlashProtocol { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
        t = f
            .health_step(t, &mut d)
            .map_err(|e| TestCaseError::fail(format!("health step failed: {e}")))?;
    }

    // Burn-in: keep a small filler write set churning (programs sense
    // the array and evict register-cached pages — a purely
    // register-resident working set would never produce telemetry) and
    // re-read the working set as the die degrades. Severity ramps
    // towards 1, so the die's programs start failing and its reads burn
    // retries; the monitor flags it and the evacuation runs — all well
    // before the death cycle.
    let on_suspect_die = |f: &Ftl, lpn: u64| {
        f.locate(lpn).is_some_and(|a| {
            a.block.channel.index() as u16 == dd.channel && a.block.die.index() as u16 == dd.die
        })
    };
    // The filler lives far above both lanes' lpn domains: its group
    // merges must never relocate the acked working set, or the victim
    // die drains organically and the evacuation has nothing to prove.
    let filler: Vec<u64> = (512..520).collect();
    for &lpn in &filler {
        if !acked.contains(&lpn) {
            acked.push(lpn);
        }
    }
    let mut rounds = 0u32;
    'burn_in: while f.health_counters().evacuations_completed == 0 {
        rounds += 1;
        prop_assert!(
            rounds < 512 && t.raw() < DEATH,
            "evacuation never completed before death: {:?}",
            f.health_counters()
        );
        for &lpn in &filler {
            match f.write(t, &mut d, lpn) {
                Ok(done) => t = done,
                Err(Error::DeviceWornOut { .. }) => break 'burn_in,
                Err(Error::UncorrectableRead { .. } | Error::FlashProtocol { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("burn-in write failed: {e}"))),
            }
        }
        for &lpn in &acked {
            match f.read(t, &mut d, lpn) {
                Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("burn-in read failed: {e}"))),
            }
        }
        t = f
            .health_step(t, &mut d)
            .map_err(|e| TestCaseError::fail(format!("health step failed: {e}")))?;
        // A floor on the clock so severity keeps ramping even when the
        // filler writes are absorbed cheaply.
        t += Cycle(DEATH / 256);
        // A die that holds no data and was never flagged has nothing to
        // evacuate — the post-death check below is then vacuous.
        if f.health_counters().suspects_flagged == 0
            && rounds >= 16
            && !acked.iter().any(|&lpn| on_suspect_die(&f, lpn))
        {
            break;
        }
    }
    prop_assert_eq!(d.dead_die_reads(), 0);

    // Kill the die: jump the clock past its death and read back the
    // whole acked working set. Every read must be served from live
    // silicon — the device-level dead-die read counter stays at zero.
    let t_dead = Cycle(DEATH + 1_000_000);
    for &lpn in &acked {
        match f.read(t_dead, &mut d, lpn) {
            Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("post-death read failed: {e}"))),
        }
    }
    prop_assert_eq!(
        d.dead_die_reads(),
        0,
        "a completed evacuation must leave nothing on the dead die"
    );
    Ok(f.health_counters())
}

/// Invariant 3: on a healthy, fault-free device the monitor flags
/// nothing, moves nothing, and leaves the mapping state identical to a
/// twin that never ran it.
fn check_inert_on_healthy_device(
    zng: bool,
    seed: u64,
    writes: &[u64],
) -> Result<(), TestCaseError> {
    let mut d_mon = device(0, seed, None);
    let mut d_off = device(0, seed, None);
    let mut f_mon = Ftl::new(zng, &d_mon, false);
    let mut f_off = Ftl::new(zng, &d_off, false);
    f_mon.set_health(Some(HealthPolicy::default()));

    let (mut t_mon, mut t_off) = (Cycle::ZERO, Cycle::ZERO);
    for &lpn in writes {
        t_mon = f_mon
            .write(t_mon, &mut d_mon, lpn)
            .map_err(|e| TestCaseError::fail(format!("monitored write failed: {e}")))?;
        t_mon = f_mon
            .health_step(t_mon, &mut d_mon)
            .map_err(|e| TestCaseError::fail(format!("health step failed: {e}")))?;
        t_off = f_off
            .write(t_off, &mut d_off, lpn)
            .map_err(|e| TestCaseError::fail(format!("plain write failed: {e}")))?;
    }

    let c = f_mon.health_counters();
    prop_assert_eq!(c.suspects_flagged, 0, "healthy die flagged: {:?}", c);
    prop_assert_eq!(c.pages_evacuated, 0, "healthy die evacuated: {:?}", c);
    prop_assert_eq!(c.dead_dies_fenced, 0);
    prop_assert_eq!(f_mon.free_blocks(), f_off.free_blocks());
    for &lpn in writes {
        prop_assert_eq!(
            f_mon.locate(lpn),
            f_off.locate(lpn),
            "monitoring a healthy device moved lpn {}",
            lpn
        );
    }
    Ok(())
}

proptest! {
    /// ZnG FTL: no acked write lost (degrading die × RAIN on/off ×
    /// fault profiles × arbitrary crash points).
    #[test]
    fn zng_health_no_acked_write_lost(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..80),
        crash_at in 0usize..80,
        rain in any::<bool>(),
    ) {
        check_no_acked_write_lost(true, profile, seed, &writes, crash_at, rain)?;
    }

    /// Conventional page-map FTL: same headline invariant.
    #[test]
    fn pagemap_health_no_acked_write_lost(
        profile in 0u8..3,
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..256, 1..80),
        crash_at in 0usize..80,
        rain in any::<bool>(),
    ) {
        check_no_acked_write_lost(false, profile, seed, &writes, crash_at, rain)?;
    }

    /// ZnG FTL: a completed evacuation leaves nothing behind — the die
    /// dies and the dead-die read counter stays at zero.
    #[test]
    fn zng_completed_evacuation_beats_die_death(
        seed in 0u64..30,
        writes in prop::collection::vec(0u64..48, 4..60),
    ) {
        check_evacuation_beats_death(true, seed, &writes)?;
    }

    /// Conventional page-map FTL: same invariant.
    #[test]
    fn pagemap_completed_evacuation_beats_die_death(
        seed in 0u64..30,
        writes in prop::collection::vec(0u64..256, 4..60),
    ) {
        check_evacuation_beats_death(false, seed, &writes)?;
    }

    /// ZnG FTL: monitoring healthy hardware is free of side effects.
    #[test]
    fn zng_health_inert_on_healthy_device(
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..48, 1..80),
    ) {
        check_inert_on_healthy_device(true, seed, &writes)?;
    }

    /// Conventional page-map FTL: same inertness guarantee.
    #[test]
    fn pagemap_health_inert_on_healthy_device(
        seed in 0u64..40,
        writes in prop::collection::vec(0u64..256, 1..80),
    ) {
        check_inert_on_healthy_device(false, seed, &writes)?;
    }
}

/// The evacuation lane must not pass vacuously: a working set that
/// blankets the footprint puts data on the degrading die, and the run
/// must report a flagged suspect and a completed evacuation.
#[test]
fn evacuation_lane_exercises_the_machinery() {
    for zng in [true, false] {
        let writes: Vec<u64> = (0..48).collect();
        let c = check_evacuation_beats_death(zng, 0, &writes).unwrap();
        assert!(c.suspects_flagged >= 1, "zng={zng}: {c:?}");
        assert!(c.evacuations_completed >= 1, "zng={zng}: {c:?}");
        assert!(c.pages_evacuated >= 1, "zng={zng}: {c:?}");
    }
}
