//! Determinism lane for the dense-structure overhaul: swapping the FTL
//! mapping tables from hash maps to direct-indexed [`zng_ftl::DenseMap`]
//! (and every hot-path map to the deterministic fast hasher) must leave
//! end-to-end behaviour a pure function of the configuration.
//!
//! For arbitrary workload parameters, any fault profile and any crash
//! point, on both FTL worlds — the ZnG zero-overhead FTL and the
//! page-map FTL inside HybridGPU's embedded SSD engine — two fresh
//! simulations of the same run emit byte-identical JSON. Any hidden
//! hash-order, allocation-order or clock dependence introduced by the
//! new structures would show up here as a diff.

use proptest::prelude::*;
use zng::{Experiment, FaultConfig, PlatformKind, SimConfig, TraceParams};

fn fault_config(profile: u8, seed: u64) -> FaultConfig {
    match profile {
        0 => FaultConfig::none(),
        1 => FaultConfig::nominal().with_seed(seed),
        _ => FaultConfig::end_of_life().with_seed(seed),
    }
}

fn run_json(platform: PlatformKind, cfg: &SimConfig, params: TraceParams) -> String {
    let mut exp = Experiment::quick().with_config(*cfg).with_params(params);
    exp.run(platform, &["back"])
        .expect("run")
        .to_json_value()
        .to_string()
}

proptest! {
    #[test]
    fn both_ftls_are_deterministic_across_faults_and_crashes(
        profile in 0u8..3,
        seed in 1u64..1_000,
        crash_sel in 0u64..400,
        warps in 4usize..10,
    ) {
        // crash_sel below 50 means "never crash"; otherwise cut power
        // after that many completed requests and recover mid-run.
        let crash = (crash_sel >= 50).then_some(crash_sel);
        let params = TraceParams {
            total_warps: warps,
            mem_ops_per_warp: 60,
            footprint_pages: 128,
            seed,
        };
        let mut cfg = SimConfig::tiny();
        cfg.fault = fault_config(profile, seed);
        cfg.crash_at = crash;
        // Both FTL worlds: the ZnG zero-overhead FTL (DenseMap DBMT/LBMT)
        // and the page-map FTL behind HybridGPU's SSD engine.
        for platform in [PlatformKind::Zng, PlatformKind::HybridGpu] {
            let first = run_json(platform, &cfg, params);
            let second = run_json(platform, &cfg, params);
            prop_assert_eq!(
                &first, &second,
                "{:?} run is not a pure function of its configuration", platform
            );
        }
    }
}
