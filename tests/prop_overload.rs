//! Overload-control property tests (this PR's headline invariants).
//!
//! For both flash FTL platforms (ZnG and HybridGPU), every fault
//! profile, and the paper's `betw-back` co-run mix, a bounded QoS
//! policy must preserve the unbounded simulator's correctness:
//!
//! 1. **No admitted request lost**: the bounded run services exactly the
//!    same number of requests and retires exactly the same number of
//!    instructions as the unbounded run — rejections delay work, they
//!    never drop it.
//! 2. **Queue-depth invariant**: no bounded queue ever holds more
//!    in-flight requests than its configured depth.
//! 3. **Bounded retries**: a rejected request performs at most
//!    `retry_budget` backoff re-issues before the single forced wait at
//!    the queue's hinted `retry_at`.
//! 4. **Bit-determinism**: two runs of the same bounded configuration
//!    produce identical cycle counts and identical QoS summaries.
//! 5. **Starvation freedom**: with a fairness window `w`, no app's
//!    weighted service lead ever exceeds `w` by more than one warp's
//!    worth of in-flight sectors, and every app finishes its work.

use proptest::prelude::*;
use zng::{PlatformKind, QosConfig, RunResult, SimConfig, Simulation};
use zng_flash::FaultConfig;
use zng_types::Cycle;
use zng_workloads::{MultiApp, TraceParams};

/// The two platforms whose backends run a real FTL over bounded flash
/// queues (Hetero's page-fault path is deliberately unbounded: its
/// residency buffer mutates before the SSD read, so a rejected retry
/// would not be idempotent there).
const FTL_PLATFORMS: [PlatformKind; 2] = [PlatformKind::Zng, PlatformKind::HybridGpu];

fn fault_profile(profile: u8) -> FaultConfig {
    match profile {
        0 => FaultConfig::none(),
        1 => FaultConfig::nominal(),
        _ => FaultConfig::end_of_life(),
    }
}

fn params() -> TraceParams {
    TraceParams {
        total_warps: 8,
        mem_ops_per_warp: 120,
        footprint_pages: 64,
        seed: 42,
    }
}

fn mix() -> MultiApp {
    MultiApp::from_names(&["betw", "back"], &params()).unwrap()
}

fn run_with(kind: PlatformKind, profile: u8, qos: QosConfig) -> RunResult {
    let mut cfg = SimConfig::tiny();
    cfg.fault = fault_profile(profile);
    cfg.qos = qos;
    let mut sim = Simulation::new(kind, &cfg).unwrap();
    sim.run(&mix()).unwrap()
}

#[test]
fn bounded_runs_lose_no_admitted_request() {
    for kind in FTL_PLATFORMS {
        for profile in 0..3u8 {
            let unbounded = run_with(kind, profile, QosConfig::unbounded());
            let bounded = run_with(kind, profile, QosConfig::bounded(2));
            assert_eq!(
                bounded.requests, unbounded.requests,
                "{kind} profile {profile}: rejections must not drop requests"
            );
            assert_eq!(
                bounded.instructions, unbounded.instructions,
                "{kind} profile {profile}: every warp still retires fully"
            );
            assert!(unbounded.qos.is_none(), "unbounded reports no summary");
            let q = bounded.qos.expect("bounded run must report a summary");
            assert!(
                q.rejected > 0,
                "{kind} profile {profile}: depth-2 queues must reject bursts"
            );
            assert!(
                q.retried > 0,
                "{kind} profile {profile}: rejections must be retried"
            );
        }
    }
}

#[test]
fn queue_occupancy_never_exceeds_depth() {
    for kind in FTL_PLATFORMS {
        for profile in 0..3u8 {
            for depth in [1usize, 2, 4] {
                let r = run_with(kind, profile, QosConfig::bounded(depth));
                let q = r.qos.unwrap();
                assert!(
                    q.max_queue_occupancy <= depth as u64,
                    "{kind} profile {profile} depth {depth}: occupancy {} exceeds bound",
                    q.max_queue_occupancy
                );
            }
        }
    }
}

#[test]
fn retries_are_bounded_by_the_budget() {
    for kind in FTL_PLATFORMS {
        for profile in 0..3u8 {
            let mut qos = QosConfig::bounded(1);
            qos.retry_budget = 3;
            let r = run_with(kind, profile, qos);
            let q = r.qos.unwrap();
            // Each rejected request may back off at most `retry_budget`
            // times and exhaust its budget at most once; backend-level
            // requests are bounded by sector requests (plus GC drains),
            // so a generous structural cap still catches unbounded loops.
            let cap = (qos.retry_budget as u64 + 1) * r.requests * 2;
            assert!(
                q.retried + q.retry_budget_exhausted <= cap,
                "{kind} profile {profile}: {} retries + {} exhaustions over cap {cap}",
                q.retried,
                q.retry_budget_exhausted
            );
            assert!(
                q.retry_budget_exhausted <= r.requests * 2,
                "{kind} profile {profile}: a request exhausts its budget at most once"
            );
        }
    }
}

#[test]
fn bounded_runs_are_bit_deterministic() {
    for kind in FTL_PLATFORMS {
        for profile in 0..3u8 {
            let a = run_with(kind, profile, QosConfig::bounded(2));
            let b = run_with(kind, profile, QosConfig::bounded(2));
            assert_eq!(a.cycles, b.cycles, "{kind} profile {profile}");
            assert_eq!(a.instructions, b.instructions, "{kind} profile {profile}");
            assert_eq!(a.requests, b.requests, "{kind} profile {profile}");
            assert_eq!(a.qos, b.qos, "{kind} profile {profile}");
            assert_eq!(
                a.per_app_requests, b.per_app_requests,
                "{kind} profile {profile}"
            );
        }
    }
}

#[test]
fn no_app_starves_under_fair_share() {
    for kind in FTL_PLATFORMS {
        for profile in 0..3u8 {
            let mut qos = QosConfig::bounded(2);
            qos.fair_window = 64;
            let r = run_with(kind, profile, qos);
            // Every app finished all of its work.
            let per_warp = params().mem_ops_per_warp as u64;
            for (app, &instr) in &r.per_app_instructions {
                assert!(
                    instr > 0,
                    "{kind} profile {profile}: app {app} retired nothing"
                );
            }
            assert_eq!(r.per_app_instructions.len(), 2, "both apps ran");
            let q = r.qos.unwrap();
            // Max-lag fairness: one app may run ahead by the window plus
            // the sectors a single warp op has in flight past the gate.
            let slack = 2 * per_warp;
            assert!(
                q.max_service_lag <= qos.fair_window + slack,
                "{kind} profile {profile}: lag {} over window {} + slack {}",
                q.max_service_lag,
                qos.fair_window,
                slack
            );
        }
    }
}

#[test]
fn end_of_life_bounded_run_paces_gc() {
    // A write-heavy mix on the base platform (direct writes, no register
    // buffering) under end-of-life faults: log blocks fill, GC fires,
    // and a tight stall budget must pace every merge.
    let mut cfg = SimConfig::tiny();
    cfg.fault = FaultConfig::end_of_life();
    cfg.qos = QosConfig::bounded(2);
    cfg.qos.gc_stall_budget = Some(Cycle(1_000));
    cfg.qos.gc_credit_writes = 2;
    let mix = MultiApp::from_names(
        &["back"],
        &TraceParams {
            total_warps: 4,
            mem_ops_per_warp: 600,
            footprint_pages: 16,
            seed: 7,
        },
    )
    .unwrap();
    let mut sim = Simulation::new(PlatformKind::ZngBase, &cfg).unwrap();
    let r = sim.run(&mix).unwrap();
    assert!(r.gcs > 0, "the mix must trigger garbage collection");
    let q = r.qos.unwrap();
    assert!(
        q.rejected > 0,
        "bounded queues must reject under load: {q:?}"
    );
    assert!(q.retried > 0, "{q:?}");
    assert!(q.paced_gcs > 0, "every merge runs under pacing: {q:?}");
    assert!(
        q.paced_gcs == r.gcs,
        "paced merges {} must cover all {} GCs",
        q.paced_gcs,
        r.gcs
    );
    assert!(
        q.gc_deadline_misses <= q.paced_gcs,
        "a merge misses its deadline at most once: {q:?}"
    );
}

proptest! {
    /// Random bounded policies keep the no-loss and depth invariants on
    /// the ZnG platform across random seeds.
    #[test]
    fn random_bounded_policies_preserve_work(
        depth in 1usize..6,
        budget in 0u32..6,
        seed in 0u64..32,
    ) {
        let p = TraceParams {
            total_warps: 4,
            mem_ops_per_warp: 60,
            footprint_pages: 32,
            seed,
        };
        let mix = MultiApp::from_names(&["betw", "back"], &p).unwrap();
        let mut cfg = SimConfig::tiny();
        let mut sim = Simulation::new(PlatformKind::Zng, &cfg).unwrap();
        let unbounded = sim.run(&mix).unwrap();

        cfg.qos = QosConfig::bounded(depth);
        cfg.qos.retry_budget = budget;
        let mut sim = Simulation::new(PlatformKind::Zng, &cfg).unwrap();
        let bounded = sim.run(&mix).unwrap();

        prop_assert_eq!(bounded.requests, unbounded.requests);
        prop_assert_eq!(bounded.instructions, unbounded.instructions);
        let q = bounded.qos.unwrap();
        prop_assert!(q.max_queue_occupancy <= depth as u64);
    }
}
