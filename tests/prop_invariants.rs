//! Property-based tests on the core data structures' invariants.

use proptest::prelude::*;
use zng_flash::{Block, FlashGeometry, RegisterCache, RowDecoder};
use zng_gpu::{CacheGeometry, Coalescer, SetAssocCache};
use zng_sim::rng::{seeded, Zipf};
use zng_sim::{EventQueue, Resource};
use zng_types::{ids::AppId, Cycle};

proptest! {
    /// The event queue always pops in non-decreasing time order,
    /// FIFO within equal timestamps.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycle(t), i);
        }
        let mut last = (Cycle::ZERO, 0usize);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            popped += 1;
            prop_assert!(t >= last.0, "time order violated");
            if t == last.0 && popped > 1 {
                prop_assert!(i > last.1, "FIFO within a timestamp violated");
            }
            last = (t, i);
        }
        prop_assert_eq!(popped, times.len());
    }

    /// A resource never starts a job before its arrival, never overlaps
    /// more jobs than it has servers, and conserves busy time.
    #[test]
    fn resource_completions_are_causal(
        ports in 1usize..4,
        jobs in prop::collection::vec((0u64..1000, 1u64..100), 1..100),
    ) {
        let mut r = Resource::new(ports);
        let mut total = 0u64;
        let mut max_done = 0u64;
        for &(at, service) in &jobs {
            let done = r.acquire(Cycle(at), Cycle(service));
            prop_assert!(done.raw() >= at + service);
            total += service;
            max_done = max_done.max(done.raw());
        }
        // Busy time is conserved: every reservation lies within
        // [0, max_done] and servers never overlap themselves, so the pool
        // cannot have served more than ports * max_done cycles of work.
        prop_assert!(
            (max_done as u128) * (ports as u128) >= total as u128,
            "served {total} cycles in {max_done} cycles on {ports} ports"
        );
    }

    /// Blocks obey erase-before-write: pages program strictly in order,
    /// valid count never exceeds programmed count, and erase resets.
    #[test]
    fn block_protocol_invariants(ops in prop::collection::vec(0u8..3, 1..300)) {
        let mut b = Block::new(16);
        let mut expected_next = 0u32;
        for op in ops {
            match op {
                0 => {
                    if let Ok(page) = b.program_next() {
                        prop_assert_eq!(page, expected_next);
                        expected_next += 1;
                    } else {
                        prop_assert!(b.is_full());
                    }
                }
                1 => {
                    b.invalidate(expected_next.saturating_sub(1));
                }
                _ => {
                    if b.valid_pages() == 0 && b.erase().is_ok() {
                        expected_next = 0;
                    }
                }
            }
            prop_assert!(b.valid_pages() <= b.programmed_pages());
            prop_assert!(b.programmed_pages() <= b.pages());
        }
    }

    /// The row-decoder CAM always resolves the *latest* mapping and
    /// never hands out the same log slot twice within an erase cycle.
    #[test]
    fn row_decoder_latest_wins(keys in prop::collection::vec(0u64..16, 1..64)) {
        let mut dec = RowDecoder::new(64);
        let mut slots = std::collections::HashSet::new();
        let mut latest = std::collections::HashMap::new();
        for &k in &keys {
            let slot = dec.record(k).unwrap();
            prop_assert!(slots.insert(slot), "slot reused");
            latest.insert(k, slot);
        }
        for (&k, &slot) in &latest {
            prop_assert_eq!(dec.lookup(k), Some(slot));
        }
        prop_assert_eq!(dec.live(), latest.len());
    }

    /// The register cache never exceeds its capacity, and every eviction
    /// or flush returns pages that were actually resident.
    #[test]
    fn register_cache_capacity_invariant(
        writes in prop::collection::vec((0u64..64, 0usize..4), 1..400),
    ) {
        let mut rc = RegisterCache::grouped(4, 2);
        let mut resident = std::collections::HashSet::new();
        for &(key, plane) in &writes {
            let out = rc.write(key, plane);
            if let Some(ev) = out.evicted {
                prop_assert!(resident.remove(&ev.key), "evicted a non-resident page");
            }
            resident.insert(key);
            prop_assert!(rc.len() <= rc.capacity());
            prop_assert_eq!(rc.len(), resident.len());
        }
        let flushed = rc.flush_all();
        prop_assert_eq!(flushed.len(), resident.len());
    }

    /// The coalescer emits unique, sector-aligned addresses covering
    /// every thread's sector.
    #[test]
    fn coalescer_covers_all_threads(base in 0u64..1_000_000, stride in 1u64..256) {
        let addrs = Coalescer::strided_addrs(base, stride);
        let sectors = Coalescer::coalesce(&addrs);
        let set: std::collections::HashSet<u64> = sectors.iter().copied().collect();
        prop_assert_eq!(set.len(), sectors.len(), "duplicates");
        for a in &addrs {
            prop_assert!(set.contains(&(a - a % 128)), "thread sector missing");
        }
        for s in &sectors {
            prop_assert_eq!(s % 128, 0);
        }
    }

    /// Cache fills never exceed capacity and lookups after a fill hit.
    #[test]
    fn cache_occupancy_bounded(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let geo = CacheGeometry { sets: 8, ways: 2, line_bytes: 128 };
        let mut c = SetAssocCache::new(geo);
        for &a in &addrs {
            c.fill(a, false, AppId(0));
            prop_assert!(c.probe(a), "just-filled line must be resident");
            prop_assert!(c.occupancy() <= geo.sets * geo.ways);
        }
    }

    /// Zipf sampling stays in range and is reproducible per seed.
    #[test]
    fn zipf_in_range_and_deterministic(n in 1usize..500, seed in 0u64..1000) {
        let z = Zipf::new(n, 0.8);
        let mut a = seeded(seed);
        let mut b = seeded(seed);
        for _ in 0..50 {
            let x = z.sample(&mut a);
            let y = z.sample(&mut b);
            prop_assert!(x < n);
            prop_assert_eq!(x, y);
        }
    }

    /// Flash geometry block index mapping is a bijection.
    #[test]
    fn geometry_block_index_bijection(idx in 0u64..1024) {
        let g = FlashGeometry::tiny();
        prop_assume!(idx < g.total_blocks() as u64);
        let addr = g.block_for_index(idx).unwrap();
        prop_assert_eq!(g.index_for_block(addr), idx);
        prop_assert!((addr.channel.index()) < g.channels);
        prop_assert!((addr.die.index()) < g.dies_per_package);
        prop_assert!((addr.plane.index()) < g.planes_per_die);
        prop_assert!((addr.block as usize) < g.blocks_per_plane);
    }
}

/// Promoted proptest regression — the seed in
/// `prop_invariants.proptest-regressions` shrinks to
/// `ports = 3, jobs = [(0, 1)]`: a single one-cycle job on an idle
/// multi-port pool. It once tripped the busy-time conservation bound in
/// `resource_completions_are_causal` (the bound compared against the
/// *first* completion instead of the latest, which a lone short job
/// exposes exactly). Pinned by name so the case keeps running even if
/// the seed file is ever pruned; the seed file stays checked in so
/// proptest replays it before generating novel cases.
#[test]
fn resource_busy_time_regression_single_short_job() {
    let mut r = Resource::new(3);
    let done = r.acquire(Cycle(0), Cycle(1));
    assert_eq!(done, Cycle(1), "an idle pool starts the job immediately");
    // ports * max_done >= total served work, even when most ports idle.
    assert!(done.raw() * 3 >= 1, "busy-time conservation violated");
}
