//! Integration tests for FTL/flash correctness across crates: mapping
//! consistency through writes and garbage collections, register-cache
//! semantics, and flash-protocol invariants at the device boundary.

use zng_flash::{FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{PageMapFtl, WriteMode, ZngFtl};
use zng_types::{Cycle, Freq};

fn device() -> FlashDevice {
    FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap()
}

#[test]
fn zng_ftl_survives_write_churn_with_many_gcs() {
    let mut d = device();
    let mut f = ZngFtl::new(&d, 2, WriteMode::Direct);
    let mut t = Cycle::ZERO;
    // Hammer a handful of pages far past the log capacity.
    for i in 0..400u64 {
        let vpn = i % 8;
        let r = f.write(t, &mut d, vpn).unwrap();
        t = r.done.max(t + Cycle(1));
    }
    assert!(f.gcs() > 3, "churn must trigger repeated GC: {}", f.gcs());
    // Every page is still readable afterwards.
    for vpn in 0..8u64 {
        f.read(t, &mut d, vpn, 128).unwrap();
    }
}

#[test]
fn zng_ftl_buffered_mode_defers_programs() {
    let mut d = device();
    let mut f = ZngFtl::new(&d, 2, WriteMode::Buffered);
    // Fewer writes than register capacity: no array program at all.
    for vpn in 0..8u64 {
        f.write(Cycle::ZERO, &mut d, vpn).unwrap();
    }
    assert_eq!(d.stats().total_programs(), 0);
    // Reads of buffered pages are register hits (no array read).
    let before = d.stats().total_reads();
    f.read(Cycle(100), &mut d, 3, 128).unwrap();
    assert_eq!(d.stats().total_reads(), before);
}

#[test]
fn pagemap_ftl_keeps_mapping_bijective_under_gc() {
    let mut d = FlashDevice::hybrid_config(FlashGeometry::tiny(), Freq::default()).unwrap();
    let mut f = PageMapFtl::new(&d);
    let mut t = Cycle::ZERO;
    for i in 0..30_000u64 {
        t = f.write_page(t, &mut d, i % 128).unwrap();
    }
    assert!(f.gcs() > 0);
    // All lpns map to distinct, valid flash pages.
    let mut seen = std::collections::HashSet::new();
    for lpn in 0..128u64 {
        let addr = f.translate(lpn).expect("mapped");
        assert!(seen.insert(addr), "two lpns map to {addr}");
        let block = d.block(addr.block).expect("block exists");
        assert!(block.is_valid(addr.page), "mapped page must be valid");
    }
}

#[test]
fn gc_report_is_self_consistent() {
    let mut d = device();
    let mut f = ZngFtl::new(&d, 2, WriteMode::Direct);
    let mut t = Cycle::ZERO;
    let mut reports = Vec::new();
    for i in 0..80u64 {
        let r = f.write(t, &mut d, i % 4).unwrap();
        t = r.done.max(t + Cycle(1));
        if let Some(gc) = r.gc {
            reports.push(gc);
        }
    }
    assert!(!reports.is_empty());
    for gc in &reports {
        assert!(gc.done >= gc.started);
        assert!(gc.erased_blocks >= 2, "data block(s) + log block");
        assert_eq!(
            gc.migrated_pages as usize,
            gc.flushed_vpns.len(),
            "every migrated page must be flushed from caches"
        );
        // Flushed vpns are unique.
        let set: std::collections::HashSet<_> = gc.flushed_vpns.iter().collect();
        assert_eq!(set.len(), gc.flushed_vpns.len());
    }
}

#[test]
fn device_wear_is_levelled_under_churn() {
    let mut d = device();
    let mut f = ZngFtl::new(&d, 1, WriteMode::Direct);
    let mut t = Cycle::ZERO;
    for i in 0..600u64 {
        let r = f.write(t, &mut d, i % 4).unwrap();
        t = r.done.max(t + Cycle(1));
    }
    assert!(f.gcs() >= 10);
    // The allocator recycles lowest-wear-first: after heavy churn no
    // block should have absorbed the entire erase budget alone.
    let g = *d.geometry();
    let mut max_wear = 0u32;
    let mut total_erases = 0u64;
    for idx in 0..g.total_blocks() as u64 {
        let addr = g.block_for_index(idx).unwrap();
        if let Some(b) = d.block(addr) {
            max_wear = max_wear.max(b.erase_count());
            total_erases += b.erase_count() as u64;
        }
    }
    assert!(total_erases > 0);
    assert!(
        (max_wear as u64) < total_erases,
        "wear must spread across blocks (max {max_wear}, total {total_erases})"
    );
}
