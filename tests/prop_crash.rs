//! Crash-consistency property tests (the PR's headline invariant).
//!
//! For an arbitrary workload, an arbitrary crash point, and any fault
//! profile, on both FTLs:
//!
//! 1. **Durability**: every write whose array program had completed by
//!    the cut is readable after recovery with contents no older than the
//!    last completed version (OOB lpn matches, stamp did not roll back).
//! 2. **No torn page served**: the post-recovery read path never
//!    surfaces a torn page.
//! 3. **Idempotence**: cutting power again straight after recovery and
//!    recovering a second time reproduces the exact same mapping state.
//! 4. **Determinism**: recovering two clones of the same crashed device
//!    yields identical reports and mappings.
//!
//! Durability is judged from the device's own out-of-band metadata at
//! the instant of the cut: a version with `programmed_at <= T_cut` (or a
//! non-demand GC/preload copy) is durable. The erase barrier can make
//! *more* versions durable than this lower bound, never fewer, so the
//! assertion `recovered seq >= durable seq` stays sound.

use std::collections::HashMap;

use proptest::prelude::*;
use zng_flash::{FaultConfig, FaultProfile, FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{PageMapFtl, WriteMode, ZngFtl};
use zng_types::{Cycle, Error, Freq};

fn device(profile: u8, seed: u64, degrading: bool) -> FlashDevice {
    let mut d = FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap();
    let mut cfg = match profile {
        0 => FaultConfig::none(),
        1 => FaultConfig::nominal().with_seed(seed),
        _ => FaultConfig::end_of_life().with_seed(seed),
    };
    if degrading {
        // A long, shallow ramp: the die gets noisy enough to be flagged
        // while writes run, but never actually dies within test time.
        cfg = cfg.with_degrading(zng_flash::DegradingDie {
            channel: 0,
            die: 0,
            onset: 0,
            death: 200_000_000,
        });
    }
    d.set_fault_config(&cfg);
    d
}

/// The lower-bound durable version of each logical page at cut time
/// `t_cut`: the highest-stamped OOB entry whose program had completed
/// (or that was written by GC/preload, which never tears).
fn durable_versions(d: &FlashDevice, t_cut: Cycle) -> HashMap<u64, u64> {
    let geo = *d.geometry();
    let mut durable: HashMap<u64, u64> = HashMap::new();
    for idx in 0..geo.total_blocks() as u64 {
        let block = geo.block_for_index(idx).unwrap();
        for page in 0..geo.pages_per_block as u32 {
            let addr = zng_types::FlashAddr { block, page };
            if let Some(m) = d.page_oob(addr) {
                // Parity and checkpoint pages carry namespace keys, not
                // logical pages — they are never durability obligations.
                let meta = m.tag == zng_flash::BlockKind::Parity
                    || m.tag == zng_flash::BlockKind::Checkpoint;
                if !meta && (!m.demand || m.programmed_at <= t_cut) {
                    let e = durable.entry(m.lpn).or_insert(0);
                    *e = (*e).max(m.seq);
                }
            }
        }
    }
    durable
}

enum Ftl {
    Zng(ZngFtl),
    Map(PageMapFtl),
}

impl Ftl {
    fn locate(&self, lpn: u64) -> Option<zng_types::FlashAddr> {
        match self {
            Ftl::Zng(f) => f.locate(lpn),
            Ftl::Map(f) => f.translate(lpn),
        }
    }

    fn free_blocks(&self) -> u64 {
        match self {
            Ftl::Zng(f) => f.free_blocks(),
            Ftl::Map(f) => f.free_blocks(),
        }
    }

    fn recover(
        &mut self,
        now: Cycle,
        d: &mut FlashDevice,
    ) -> zng_types::Result<zng_ftl::RecoveryReport> {
        match self {
            Ftl::Zng(f) => f.recover(now, d),
            Ftl::Map(f) => f.recover(now, d),
        }
    }

    fn read(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.read(now, d, lpn, 128),
            Ftl::Map(f) => f.read_page(now, d, lpn, 128),
        }
    }

    fn clone_box(&self) -> Ftl {
        match self {
            Ftl::Zng(f) => Ftl::Zng(f.clone()),
            Ftl::Map(f) => Ftl::Map(f.clone()),
        }
    }

    fn set_checkpointing(&mut self, config: Option<zng_ftl::CheckpointConfig>) {
        match self {
            Ftl::Zng(f) => f.set_checkpointing(config),
            Ftl::Map(f) => f.set_checkpointing(config),
        }
    }

    fn checkpoint_step(&mut self, now: Cycle, d: &mut FlashDevice) -> Cycle {
        match self {
            Ftl::Zng(f) => f.checkpoint_step(now, d),
            Ftl::Map(f) => f.checkpoint_step(now, d),
        }
    }

    fn set_health(&mut self, policy: Option<zng_ftl::HealthPolicy>) {
        match self {
            Ftl::Zng(f) => f.set_health(policy),
            Ftl::Map(f) => f.set_health(policy),
        }
    }

    fn health_step(&mut self, now: Cycle, d: &mut FlashDevice) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.health_step(now, d),
            Ftl::Map(f) => f.health_step(now, d),
        }
    }
}

/// Runs the full crash scenario and checks all four invariants.
///
/// With `ckpt: Some((every, cap))` the FTL checkpoints every `every`
/// writes under journal cap `cap`, so the cut can land mid-epoch,
/// mid-journal, or right after a commit — and a fifth invariant applies:
/// the checkpointed recovery (fast path or fallback alike) must rebuild
/// exactly the mapping a checkpoint-less full scan of the same crashed
/// media rebuilds.
#[allow(
    clippy::too_many_lines,
    clippy::too_many_arguments,
    clippy::fn_params_excessive_bools
)]
fn check_crash(
    profile: u8,
    seed: u64,
    writes: &[u64],
    crash_at: usize,
    settle: bool,
    mode: Option<WriteMode>,
    ckpt: Option<(usize, u64)>,
    health: bool,
) -> Result<(), TestCaseError> {
    let mut d = device(profile, seed, health);
    let mut f = match mode {
        Some(m) => Ftl::Zng(ZngFtl::new(&d, 2, m)),
        None => Ftl::Map(PageMapFtl::new(&d)),
    };
    if let Some((_, cap)) = ckpt {
        f.set_checkpointing(Some(zng_ftl::CheckpointConfig {
            every_ops: 1,
            journal_cap: cap,
            pacing: None,
        }));
    }
    if health {
        // A hair-trigger threshold: the degrading die is quarantined on
        // its first telemetry blip and its evacuation runs between
        // writes, so the cut can land with an evacuation in flight.
        f.set_health(Some(zng_ftl::HealthPolicy {
            window: 4,
            suspect_threshold: 0.0005,
            evacuate: true,
            pacing: None,
        }));
    }

    // Phase 1: drive writes up to the crash point.
    let crash_at = crash_at.min(writes.len());
    let mut t = Cycle::ZERO;
    for (i, &lpn) in writes[..crash_at].iter().enumerate() {
        let r = match &mut f {
            Ftl::Zng(z) => z.write(t, &mut d, lpn).map(|r| r.done),
            Ftl::Map(m) => m.write_page(t, &mut d, lpn),
        };
        match r {
            Ok(done) => t = done,
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. }) => {}
            // A redrive-exhausted write on the degrading die was never
            // acked, so it creates no durability obligation.
            Err(Error::FlashProtocol { .. }) if health => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
        if let Some((every, _)) = ckpt {
            if (i + 1) % every == 0 {
                t = f.checkpoint_step(t, &mut d);
            }
        }
        if health {
            t = f
                .health_step(t, &mut d)
                .map_err(|e| TestCaseError::fail(format!("health step failed: {e}")))?;
        }
    }
    // A "settled" cut waits out every background program; an immediate
    // cut catches them mid-flight and exercises the torn-page paths.
    let t_cut = if settle { t + Cycle(10_000_000) } else { t };

    // Phase 2: the cut. Judge durability from the media itself, then
    // drop all volatile state.
    let mut d2 = d.clone();
    let mut f2 = f.clone_box();
    d.power_loss(t_cut);
    let durable = durable_versions(&d, t_cut);
    let report = f
        .recover(t_cut, &mut d)
        .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;

    // Invariant 1+2: every durable version is mapped, not rolled back,
    // and readable without ever serving a torn page.
    let t_after = t_cut + report.scan_cycles + Cycle(1);
    for (&lpn, &seq) in &durable {
        let addr = f.locate(lpn);
        prop_assert!(
            addr.is_some(),
            "durable lpn {lpn} (seq {seq}) lost its mapping"
        );
        let addr = addr.unwrap();
        prop_assert!(!d.page_is_torn(addr), "lpn {lpn} mapped to a torn page");
        let stamp = d.page_stamp(addr);
        prop_assert!(stamp.is_some(), "lpn {lpn} mapped to unstamped media");
        let (key, got) = stamp.unwrap();
        prop_assert_eq!(key, lpn, "lpn {} resolves to foreign data", lpn);
        prop_assert!(
            got >= seq,
            "lpn {lpn} rolled back past a durable version ({got} < {seq})"
        );
        match f.read(t_after, &mut d, lpn) {
            Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
            Err(Error::TornPage { .. }) => {
                return Err(TestCaseError::fail(format!("torn page served for {lpn}")))
            }
            Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
        }
    }

    // Invariant 3: a second cut immediately after recovery (a crash
    // during/just after recovery) recovers to the same mapping state.
    let mut d_again = d.clone();
    let mut f_again = f.clone_box();
    d_again.power_loss(t_after);
    f_again
        .recover(t_after, &mut d_again)
        .map_err(|e| TestCaseError::fail(format!("re-recovery failed: {e}")))?;
    prop_assert_eq!(f.free_blocks(), f_again.free_blocks());
    for &lpn in writes {
        prop_assert_eq!(
            f.locate(lpn),
            f_again.locate(lpn),
            "recovery is not idempotent for lpn {}",
            lpn
        );
    }

    // Invariant 4: recovery of an identical crashed clone is
    // deterministic — same report, same mappings.
    let mut d3 = d2.clone();
    let mut f3 = f2.clone_box();
    d2.power_loss(t_cut);
    let report2 = f2
        .recover(t_cut, &mut d2)
        .map_err(|e| TestCaseError::fail(format!("clone recovery failed: {e}")))?;
    prop_assert_eq!(report.pages_scanned, report2.pages_scanned);
    prop_assert_eq!(report.torn_discarded, report2.torn_discarded);
    prop_assert_eq!(report.stale_dropped, report2.stale_dropped);
    prop_assert_eq!(report.blocks_erased, report2.blocks_erased);
    prop_assert_eq!(report.scan_cycles, report2.scan_cycles);
    for &lpn in writes {
        prop_assert_eq!(f.locate(lpn), f2.locate(lpn));
    }

    // Invariant 5 (checkpointing only): whether the recovery took the
    // journal fast path or fell back, it must rebuild exactly the state
    // a checkpoint-less full scan of the same crashed media rebuilds.
    if ckpt.is_some() {
        prop_assert!(
            report.fast_path || report.fallback,
            "a checkpointed recovery must report its path: {report:?}"
        );
        f3.set_checkpointing(None);
        d3.power_loss(t_cut);
        let full = f3
            .recover(t_cut, &mut d3)
            .map_err(|e| TestCaseError::fail(format!("full-scan recovery failed: {e}")))?;
        prop_assert!(!full.fast_path && !full.fallback);
        prop_assert_eq!(f.free_blocks(), f3.free_blocks());
        for &lpn in writes {
            prop_assert_eq!(
                f.locate(lpn),
                f3.locate(lpn),
                "checkpointed recovery diverged from the full scan for lpn {}",
                lpn
            );
        }
    }
    Ok(())
}

proptest! {
    /// ZnG FTL, direct writes: durable data survives any crash point.
    #[test]
    fn zng_direct_survives_crashes(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..48, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
    ) {
        check_crash(profile, seed, &writes, crash_at, settle, Some(WriteMode::Direct), None, false)?;
    }

    /// ZnG FTL, buffered (register-grouped) writes: register-resident
    /// data is lost by design, but everything programmed stays durable.
    #[test]
    fn zng_buffered_survives_crashes(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..48, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
    ) {
        check_crash(profile, seed, &writes, crash_at, settle, Some(WriteMode::Buffered), None, false)?;
    }

    /// Conventional page-map FTL: same headline invariant.
    #[test]
    fn pagemap_survives_crashes(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..256, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
    ) {
        check_crash(profile, seed, &writes, crash_at, settle, None, None, false)?;
    }

    /// ZnG FTL with checkpointing: arbitrary cadences, journal caps and
    /// crash points (mid-epoch, mid-journal, straight after a commit)
    /// never lose durable data, and the recovery — fast path or fallback
    /// — is bit-identical to a checkpoint-less full scan.
    #[test]
    fn zng_checkpointed_crashes_match_full_scan(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..48, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
        every in 2usize..25,
        cap_sel in 0usize..4,
    ) {
        let cap = [0u64, 4, 16, 256][cap_sel];
        check_crash(
            profile, seed, &writes, crash_at, settle,
            Some(WriteMode::Direct), Some((every, cap)), false,
        )?;
    }

    /// Conventional page-map FTL with checkpointing: same invariants.
    #[test]
    fn pagemap_checkpointed_crashes_match_full_scan(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..256, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
        every in 2usize..25,
        cap_sel in 0usize..4,
    ) {
        let cap = [0u64, 4, 16, 256][cap_sel];
        check_crash(profile, seed, &writes, crash_at, settle, None, Some((every, cap)), false)?;
    }

    /// Chaos lane: every robustness subsystem at once — RAIN redundancy,
    /// verified reads, endurance management, bounded overload control and
    /// background checkpointing — under an arbitrary mid-run power cut.
    /// The run must recover (fast path or clean fallback), resume, and
    /// service exactly the work its crash-free twin services: no acked
    /// write is ever lost.
    #[test]
    fn chaos_combined_faults_lose_nothing(
        seed in 0u64..8,
        crash_at in 50u64..400,
        every in 16u64..64,
    ) {
        use zng::{
            CheckpointConfig, EnduranceConfig, HealthConfig, IntegrityConfig, PlatformKind,
            QosConfig, RedundancyConfig, SimConfig, Simulation,
        };
        use zng_workloads::{MultiApp, TraceParams};

        let p = TraceParams {
            total_warps: 4,
            mem_ops_per_warp: 120,
            footprint_pages: 64,
            seed,
        };
        let mix = MultiApp::from_names(&["betw", "back"], &p).unwrap();
        let mut cfg = SimConfig::tiny();
        cfg.fault = FaultConfig::nominal()
            .with_seed(seed)
            .with_degrading(zng_flash::DegradingDie {
                channel: 0,
                die: 0,
                onset: 100_000,
                death: 40_000_000,
            });
        cfg.qos = QosConfig::bounded(8);
        cfg.redundancy = RedundancyConfig::rain(0);
        cfg.integrity = IntegrityConfig {
            enabled: true,
            ..IntegrityConfig::off()
        };
        cfg.endurance = EnduranceConfig::on(0);
        cfg.checkpoint = CheckpointConfig::on(every);
        cfg.health = HealthConfig {
            enabled: true,
            every_ops: 7,
            window: 16,
            suspect_threshold: 0.02,
            evacuate: true,
        };
        cfg.crash_at = Some(crash_at);
        let crashed = Simulation::new(PlatformKind::Zng, &cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        let cr = crashed.crash_recovery.expect("the cut must be reported");
        prop_assert!(
            cr.fast_path || cr.fallback,
            "a checkpointed recovery must report its path: {cr:?}"
        );
        let mut clean_cfg = cfg;
        clean_cfg.crash_at = None;
        let clean = Simulation::new(PlatformKind::Zng, &clean_cfg)
            .unwrap()
            .run(&mix)
            .unwrap();
        prop_assert_eq!(crashed.requests, clean.requests);
        prop_assert_eq!(crashed.instructions, clean.instructions);
    }

    /// ZnG FTL with a degrading die, a hair-trigger health monitor and
    /// checkpointing: the cut can land with a pre-emptive evacuation in
    /// flight, and the journal fast path must still rebuild exactly what
    /// a checkpoint-less full scan rebuilds — evacuation migrations are
    /// journalled like any other mapping change.
    #[test]
    fn zng_health_evacuation_crashes_match_full_scan(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..48, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
        every in 2usize..25,
    ) {
        check_crash(
            profile, seed, &writes, crash_at, settle,
            Some(WriteMode::Direct), Some((every, 256)), true,
        )?;
    }

    /// Conventional page-map FTL under the same degrading-die +
    /// evacuation + checkpointing chaos: same invariants.
    #[test]
    fn pagemap_health_evacuation_crashes_match_full_scan(
        profile in 0u8..3,
        seed in 0u64..50,
        writes in prop::collection::vec(0u64..256, 1..100),
        crash_at in 0usize..100,
        settle in any::<bool>(),
        every in 2usize..25,
    ) {
        check_crash(profile, seed, &writes, crash_at, settle, None, Some((every, 256)), true)?;
    }
}

/// `FaultProfile` is re-exported so CLI-level tooling can name profiles;
/// keep the parse path covered from the integration side too.
#[test]
fn fault_profiles_parse() {
    assert!(matches!(
        FaultProfile::parse("end-of-life"),
        Ok(FaultProfile::EndOfLife)
    ));
}
