//! End-to-end data-integrity property tests (the PR's headline
//! invariant).
//!
//! For an arbitrary workload, arbitrary silent-corruption points, any
//! fault profile, redundancy on or off, and an arbitrary crash point, on
//! both FTLs:
//!
//! 1. **No corrupted payload is ever served as a successful read.** A
//!    read of a corrupt page either heals it (RAIN reconstruction, after
//!    which the mapped copy is clean) or fails loudly with
//!    [`Error::IntegrityViolation`]. On the media-only page-map FTL this
//!    is asserted after *every* read; on the ZnG FTL, whose flash
//!    registers legitimately serve still-buffered (uncorrupted) data, it
//!    is asserted for every post-crash read, when no register copies
//!    remain.
//! 2. **Recovery quarantines, never resurrects.** After an OOB-scan
//!    recovery, no logical page maps to a corrupt media copy.
//! 3. **Determinism.** The same scenario replayed yields identical
//!    integrity counters and mappings.
//!
//! Corruption is injected with the deterministic `mark_page_corrupt`
//! hook (the organic paths — wear/retention SDC streams and `--sdc-at` —
//! are covered by unit tests in `zng-flash` and the runner).

use proptest::prelude::*;
use zng_flash::{FaultConfig, FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{PageMapFtl, RainConfig, WriteMode, ZngFtl};
use zng_types::{Cycle, Error, Freq};

fn device(profile: u8, seed: u64) -> FlashDevice {
    let mut d = FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap();
    let cfg = match profile {
        0 => FaultConfig::none(),
        1 => FaultConfig::nominal().with_seed(seed),
        _ => FaultConfig::end_of_life().with_seed(seed),
    };
    d.set_fault_config(&cfg);
    d
}

enum Ftl {
    Zng(ZngFtl),
    Map(PageMapFtl),
}

impl Ftl {
    fn new(d: &FlashDevice, mode: Option<WriteMode>, rain: bool) -> Ftl {
        let mut f = match mode {
            Some(m) => Ftl::Zng(ZngFtl::new(d, 2, m)),
            None => Ftl::Map(PageMapFtl::new(d)),
        };
        match &mut f {
            Ftl::Zng(z) => {
                if rain {
                    z.set_redundancy(d, Some(RainConfig::default()));
                }
                z.set_integrity(true);
            }
            Ftl::Map(m) => {
                if rain {
                    m.set_redundancy(d, Some(RainConfig::default()));
                }
                m.set_integrity(true);
            }
        }
        f
    }

    fn locate(&self, lpn: u64) -> Option<zng_types::FlashAddr> {
        match self {
            Ftl::Zng(f) => f.locate(lpn),
            Ftl::Map(f) => f.translate(lpn),
        }
    }

    fn write(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.write(now, d, lpn).map(|r| r.done),
            Ftl::Map(f) => f.write_page(now, d, lpn),
        }
    }

    fn read(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.read(now, d, lpn, 128),
            Ftl::Map(f) => f.read_page(now, d, lpn, 128),
        }
    }

    fn recover(
        &mut self,
        now: Cycle,
        d: &mut FlashDevice,
    ) -> zng_types::Result<zng_ftl::RecoveryReport> {
        match self {
            Ftl::Zng(f) => f.recover(now, d),
            Ftl::Map(f) => f.recover(now, d),
        }
    }

    fn counters(&self) -> zng_ftl::IntegrityCounters {
        match self {
            Ftl::Zng(f) => f.integrity_counters(),
            Ftl::Map(f) => f.integrity_counters(),
        }
    }

    fn is_media_only(&self) -> bool {
        matches!(self, Ftl::Map(_))
    }
}

/// One read, with the full outcome contract applied: success, a loud
/// integrity violation, or an organic media error — never a quiet serve
/// of a corrupt copy (asserted via the post-read mapping when the read
/// cannot have been satisfied by a register).
fn checked_read(
    f: &mut Ftl,
    d: &mut FlashDevice,
    t: Cycle,
    lpn: u64,
    media_only: bool,
) -> Result<Cycle, TestCaseError> {
    match f.read(t, d, lpn) {
        Ok(done) => {
            if media_only {
                if let Some(addr) = f.locate(lpn) {
                    prop_assert!(
                        !d.page_is_corrupt(addr),
                        "lpn {lpn} read Ok but still maps to corrupt media"
                    );
                }
            }
            Ok(done)
        }
        Err(
            Error::IntegrityViolation { .. }
            | Error::UncorrectableRead { .. }
            | Error::DeviceWornOut { .. },
        ) => Ok(t),
        Err(e) => Err(TestCaseError::fail(format!("read of {lpn} failed: {e}"))),
    }
}

/// Drives writes with interleaved corruption injection and verified
/// reads, cuts power at an arbitrary point, recovers, and checks the
/// quarantine + no-corrupt-serve invariants on every logical page.
fn check_integrity(
    profile: u8,
    seed: u64,
    writes: &[u64],
    corrupt_every: usize,
    crash_at: usize,
    rain: bool,
    mode: Option<WriteMode>,
) -> Result<(), TestCaseError> {
    let mut d = device(profile, seed);
    let mut f = Ftl::new(&d, mode, rain);

    // Phase 1: writes up to the crash point; every `corrupt_every`-th
    // write's media copy is silently corrupted, then read back through
    // the verified read path.
    let crash_at = crash_at.min(writes.len());
    let mut t = Cycle::ZERO;
    for (i, &lpn) in writes[..crash_at].iter().enumerate() {
        match f.write(t, &mut d, lpn) {
            Ok(done) => t = done,
            Err(Error::DeviceWornOut { .. }) => break,
            // A write can fail loudly too: the RMW fetch of a corrupt
            // old copy refuses to fold unverifiable data forward.
            Err(Error::UncorrectableRead { .. } | Error::IntegrityViolation { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
        }
        if i % corrupt_every == 0 {
            if let Some(addr) = f.locate(lpn) {
                if d.page_oob(addr).is_some() {
                    let _ = d.mark_page_corrupt(addr);
                }
            }
            let media_only = f.is_media_only();
            t = checked_read(&mut f, &mut d, t, lpn, media_only)?;
        }
    }

    // Phase 2: the cut. Wait out background programs so durability is
    // not at issue (prop_crash covers torn pages), then recover.
    let t_cut = t + Cycle(10_000_000);
    d.power_loss(t_cut);
    let report = f
        .recover(t_cut, &mut d)
        .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;

    // Invariant 2: the scan never resurrects a corrupt copy as a
    // winner. On the page-map FTL every mapping is a resolved winner, so
    // no logical page may map to corrupt media. The ZnG FTL's DBMT maps
    // data blocks positionally — a corrupt data page stays *reachable*
    // (it has no older copy to roll back to) but is excluded from the
    // restored-valid set and contained by the verified read path, which
    // phase 3 exercises.
    if f.is_media_only() {
        for &lpn in writes {
            if let Some(addr) = f.locate(lpn) {
                prop_assert!(
                    !d.page_is_corrupt(addr),
                    "recovery resurrected corrupt media for lpn {lpn}"
                );
            }
        }
    }
    // Mappings and counters as recovery left them, before phase-3 reads
    // fault in fresh pages and bump the detection counts.
    let recovered: Vec<_> = writes.iter().map(|&l| (l, f.locate(l))).collect();
    let counters_at_recovery = f.counters();

    // Phase 3: with the registers gone, every read is a media read — the
    // sharpest form of invariant 1, on both FTLs.
    let mut t = t_cut + report.scan_cycles + Cycle(1);
    for &lpn in writes {
        t = checked_read(&mut f, &mut d, t, lpn, true)?;
    }

    // Invariant 3: the whole scenario replays deterministically.
    let mut d2 = device(profile, seed);
    let mut f2 = Ftl::new(&d2, mode, rain);
    let mut t2 = Cycle::ZERO;
    for (i, &lpn) in writes[..crash_at].iter().enumerate() {
        match f2.write(t2, &mut d2, lpn) {
            Ok(done) => t2 = done,
            Err(Error::DeviceWornOut { .. }) => break,
            Err(Error::UncorrectableRead { .. } | Error::IntegrityViolation { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("replay write failed: {e}"))),
        }
        if i % corrupt_every == 0 {
            if let Some(addr) = f2.locate(lpn) {
                if d2.page_oob(addr).is_some() {
                    let _ = d2.mark_page_corrupt(addr);
                }
            }
            let media_only = f2.is_media_only();
            t2 = checked_read(&mut f2, &mut d2, t2, lpn, media_only)?;
        }
    }
    let t2_cut = t2 + Cycle(10_000_000);
    d2.power_loss(t2_cut);
    let report2 = f2
        .recover(t2_cut, &mut d2)
        .map_err(|e| TestCaseError::fail(format!("replay recovery failed: {e}")))?;
    prop_assert_eq!(report.corrupt_quarantined, report2.corrupt_quarantined);
    prop_assert_eq!(counters_at_recovery, f2.counters());
    for (lpn, addr) in recovered {
        prop_assert_eq!(
            addr,
            f2.locate(lpn),
            "recovery mapping diverged for lpn {}",
            lpn
        );
    }
    Ok(())
}

proptest! {
    /// ZnG FTL, direct writes, no redundancy: corrupt reads fail loudly.
    #[test]
    fn zng_direct_never_serves_corruption(
        profile in 0u8..3,
        seed in 0u64..25,
        writes in prop::collection::vec(0u64..48, 1..80),
        corrupt_every in 1usize..6,
        crash_at in 0usize..80,
    ) {
        check_integrity(profile, seed, &writes, corrupt_every, crash_at,
            false, Some(WriteMode::Direct))?;
    }

    /// ZnG FTL, direct writes, RAIN on: corrupt reads reconstruct.
    #[test]
    fn zng_direct_with_rain_never_serves_corruption(
        profile in 0u8..3,
        seed in 0u64..25,
        writes in prop::collection::vec(0u64..48, 1..80),
        corrupt_every in 1usize..6,
        crash_at in 0usize..80,
    ) {
        check_integrity(profile, seed, &writes, corrupt_every, crash_at,
            true, Some(WriteMode::Direct))?;
    }

    /// ZnG FTL, buffered (register-grouped) writes, both policies.
    #[test]
    fn zng_buffered_never_serves_corruption(
        profile in 0u8..3,
        seed in 0u64..25,
        writes in prop::collection::vec(0u64..48, 1..80),
        corrupt_every in 1usize..6,
        crash_at in 0usize..80,
        rain in any::<bool>(),
    ) {
        check_integrity(profile, seed, &writes, corrupt_every, crash_at,
            rain, Some(WriteMode::Buffered))?;
    }

    /// Conventional page-map FTL: the invariant holds on every read.
    #[test]
    fn pagemap_never_serves_corruption(
        profile in 0u8..3,
        seed in 0u64..25,
        writes in prop::collection::vec(0u64..256, 1..80),
        corrupt_every in 1usize..6,
        crash_at in 0usize..80,
        rain in any::<bool>(),
    ) {
        check_integrity(profile, seed, &writes, corrupt_every, crash_at,
            rain, None)?;
    }
}

/// Integrity off is the control: the same corrupt page is served
/// without complaint (silent corruption really is silent below the
/// verification layer), which is exactly why the verified path exists.
#[test]
fn integrity_off_serves_corruption_silently() {
    let mut d = device(0, 0);
    let mut f = PageMapFtl::new(&d);
    let mut t = f.write_page(Cycle::ZERO, &mut d, 7).unwrap();
    let addr = f.translate(7).unwrap();
    d.mark_page_corrupt(addr).unwrap();
    t = f
        .read_page(t, &mut d, 7, 128)
        .expect("unverified read serves");
    assert!(d.page_is_corrupt(addr), "nothing healed it");
    // Flipping verification on turns the same read into a loud failure.
    f.set_integrity(true);
    match f.read_page(t, &mut d, 7, 128) {
        Err(Error::IntegrityViolation { .. }) => {}
        other => panic!("expected IntegrityViolation, got {other:?}"),
    }
}
