//! Property tests for the fault-injection subsystem: under any injected
//! fault sequence, an acknowledged write is never lost and a read never
//! returns a version older than the last acknowledged one.
//!
//! The proof leans on the flash-layer *stamps*: every successful program
//! records `(page key, global program sequence)` on the physical page.
//! If the location an FTL resolves a page to carries that page's own key
//! at a sequence number no older than the one observed when the write
//! was acknowledged, then no failed program, re-drive, GC migration or
//! block retirement dropped or rolled back acknowledged data.

use std::collections::HashMap;

use proptest::prelude::*;
use zng_flash::{FaultConfig, FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{PageMapFtl, WriteMode, ZngFtl};
use zng_types::{Cycle, Error, Freq};

fn device(cfg: &FaultConfig) -> FlashDevice {
    let mut d = FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap();
    d.set_fault_config(cfg);
    d
}

fn fault_config(seed: u64, eol: bool) -> FaultConfig {
    if eol {
        FaultConfig::end_of_life().with_seed(seed)
    } else {
        FaultConfig::nominal().with_seed(seed)
    }
}

/// Drives `writes` through a [`ZngFtl`] and checks the stamp invariant.
fn check_zng_ftl(
    seed: u64,
    eol: bool,
    writes: &[u64],
    mode: WriteMode,
) -> Result<(), TestCaseError> {
    let cfg = fault_config(seed, eol);
    let mut d = device(&cfg);
    let mut f = ZngFtl::new(&d, 2, mode);

    // vpn -> (key, program sequence) observed when the write was acked.
    let mut acked: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut t = Cycle::ZERO;
    for &vpn in writes {
        match f.write(t, &mut d, vpn) {
            Ok(r) => {
                t = r.done;
                if let Some(addr) = f.locate(vpn) {
                    if let Some(stamp) = d.page_stamp(addr) {
                        prop_assert_eq!(stamp.0, vpn, "acked write resolves to foreign data");
                        acked.insert(vpn, stamp);
                    }
                }
            }
            // Graceful wear-out ends the workload; nothing was acked.
            Err(Error::DeviceWornOut { .. }) => break,
            // A transient RMW fetch failure: the write never happened.
            Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    for (&vpn, &(_, ack_seq)) in &acked {
        let addr = f.locate(vpn);
        prop_assert!(addr.is_some(), "acked vpn {vpn} lost its mapping");
        if let Some(stamp) = d.page_stamp(addr.unwrap()) {
            prop_assert_eq!(stamp.0, vpn, "vpn {} reads foreign data", vpn);
            prop_assert!(
                stamp.1 >= ack_seq,
                "vpn {vpn} rolled back to an older version ({} < {ack_seq})",
                stamp.1
            );
        }
        // The read path itself stays panic-free: only transient sense
        // failures are acceptable errors.
        match f.read(t, &mut d, vpn, 128) {
            Ok(_) | Err(Error::UncorrectableRead { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
        }
    }
    Ok(())
}

/// Same invariant for the conventional page-level FTL.
fn check_pagemap(seed: u64, eol: bool, writes: &[u64]) -> Result<(), TestCaseError> {
    let cfg = fault_config(seed, eol);
    let mut d = device(&cfg);
    let mut f = PageMapFtl::new(&d);

    let mut acked: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut t = Cycle::ZERO;
    for &lpn in writes {
        match f.write_page(t, &mut d, lpn) {
            Ok(done) => {
                t = done;
                let addr = f.translate(lpn).expect("acked write must be mapped");
                let stamp = d
                    .page_stamp(addr)
                    .expect("page-level FTL programs always stamp");
                prop_assert_eq!(stamp.0, lpn);
                acked.insert(lpn, stamp);
            }
            Err(Error::DeviceWornOut { .. }) => break,
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    for (&lpn, &(_, ack_seq)) in &acked {
        let addr = f.translate(lpn);
        prop_assert!(addr.is_some(), "acked lpn {lpn} lost its mapping");
        let stamp = d.page_stamp(addr.unwrap());
        prop_assert!(stamp.is_some(), "acked lpn {lpn} points at unstamped media");
        let (key, seq) = stamp.unwrap();
        prop_assert_eq!(key, lpn, "lpn {} reads foreign data", lpn);
        prop_assert!(
            seq >= ack_seq,
            "lpn {lpn} rolled back to an older version ({seq} < {ack_seq})"
        );
    }
    Ok(())
}

proptest! {
    /// ZnG FTL, direct writes: no acked write is lost or rolled back
    /// under nominal or end-of-life fault injection.
    #[test]
    fn zng_direct_writes_survive_faults(
        seed in 0u64..200,
        eol in 0u8..2,
        writes in prop::collection::vec(0u64..48, 1..200),
    ) {
        check_zng_ftl(seed, eol == 1, &writes, WriteMode::Direct)?;
    }

    /// ZnG FTL, buffered (register-grouped) writes: same invariant.
    #[test]
    fn zng_buffered_writes_survive_faults(
        seed in 0u64..200,
        eol in 0u8..2,
        writes in prop::collection::vec(0u64..48, 1..200),
    ) {
        check_zng_ftl(seed, eol == 1, &writes, WriteMode::Buffered)?;
    }

    /// Conventional page-level FTL: same invariant.
    #[test]
    fn pagemap_writes_survive_faults(
        seed in 0u64..200,
        eol in 0u8..2,
        writes in prop::collection::vec(0u64..256, 1..200),
    ) {
        check_pagemap(seed, eol == 1, &writes)?;
    }
}
