//! Golden-determinism gate: the default run's JSON output is pinned
//! byte-for-byte against checked-in golden files.
//!
//! Two guarantees ride on this:
//!
//! 1. **Determinism** — the same command run twice produces identical
//!    bytes (no hidden clock, RNG or hash-order dependence).
//! 2. **Integrity-off is inert** — the opt-in data-integrity subsystem
//!    (and every other opt-in feature) leaves the default output
//!    untouched. A change that perturbs these bytes is either a real
//!    behaviour change (regenerate the goldens deliberately, in the
//!    same commit, with an explanation) or an accidental leak of an
//!    opt-in feature into the default path (fix the leak).
//!
//! Regenerate with:
//!
//! ```text
//! cargo build --release
//! ./target/release/zng-cli run -p zng -w betw --warps 8 --ops 40 \
//!     --footprint 128 --json > tests/golden/run_default.json
//! ./target/release/zng-cli run -p zng -w betw --warps 8 --ops 40 \
//!     --footprint 128 --json --faults end-of-life > tests/golden/run_eol.json
//! ./target/release/zng-cli run -p zng -w betw --warps 8 --ops 40 \
//!     --footprint 128 --json --checkpoint --checkpoint-every 25 \
//!     --crash-at 100 > tests/golden/run_checkpoint.json
//! ```

use std::path::Path;
use std::process::Command;

const RUN_ARGS: &[&str] = &[
    "run",
    "-p",
    "zng",
    "-w",
    "betw",
    "--warps",
    "8",
    "--ops",
    "40",
    "--footprint",
    "128",
    "--json",
];

fn run_cli(extra: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_zng-cli"))
        .args(RUN_ARGS)
        .args(extra)
        .output()
        .expect("spawn zng-cli");
    assert!(
        out.status.success(),
        "golden run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn golden(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn assert_bytes_match(got: &[u8], want: &[u8], what: &str) {
    if got != want {
        panic!(
            "{what} drifted from its golden file.\n\
             If the change is intentional, regenerate the goldens (see \
             tests/golden.rs header) in the same commit.\n\
             --- golden ---\n{}\n--- got ---\n{}",
            String::from_utf8_lossy(want),
            String::from_utf8_lossy(got),
        );
    }
}

#[test]
fn default_run_matches_golden_and_is_deterministic() {
    let first = run_cli(&[]);
    let second = run_cli(&[]);
    assert_eq!(
        first, second,
        "two identical invocations produced different bytes"
    );
    assert_bytes_match(&first, &golden("run_default.json"), "default run");
}

/// `--perf` telemetry must be additive: the run's simulated results are
/// byte-identical to the default golden, with only the (inherently
/// nondeterministic, therefore never-golden) `perf_*` keys appended.
#[test]
fn perf_flag_adds_only_perf_keys() {
    let text = String::from_utf8(run_cli(&["--perf"])).expect("utf8 json");
    assert!(
        text.contains("\"perf_events\"") && text.contains("\"perf_events_per_sec\""),
        "--perf attaches throughput telemetry"
    );
    let mut kept: Vec<String> = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"perf_"))
        .map(str::to_string)
        .collect();
    // The perf keys are the object's last fields, so dropping them
    // leaves a dangling comma on the previous field's line.
    let last_field = kept.len().saturating_sub(2);
    if let Some(line) = kept.get_mut(last_field) {
        if let Some(stripped) = line.strip_suffix(',') {
            *line = stripped.to_string();
        }
    }
    let mut rebuilt = kept.join("\n");
    rebuilt.push('\n');
    assert_bytes_match(
        rebuilt.as_bytes(),
        &golden("run_default.json"),
        "--perf run minus perf keys",
    );
}

#[test]
fn end_of_life_run_matches_golden() {
    let got = run_cli(&["--faults", "end-of-life"]);
    assert_bytes_match(&got, &golden("run_eol.json"), "end-of-life run");
}

/// Pins the checkpointed crash-recovery output: the writer's counters,
/// the crash report's fast-path fields (the golden has
/// `crash_fast_path: true` — a fast path that silently stops engaging
/// here is a regression, not noise) and the recovered run's results.
#[test]
fn checkpointed_crash_run_matches_golden() {
    let got = run_cli(&[
        "--checkpoint",
        "--checkpoint-every",
        "25",
        "--crash-at",
        "100",
    ]);
    assert_bytes_match(
        &got,
        &golden("run_checkpoint.json"),
        "checkpointed crash run",
    );
}
