//! End-to-end tests of the `zng-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zng-cli"))
}

#[test]
fn list_shows_platforms_and_workloads() {
    let out = cli().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "hetero",
        "hybridgpu",
        "optane",
        "zng",
        "ideal",
        "betw",
        "gram",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn run_prints_metrics_table() {
    let out = cli()
        .args([
            "run",
            "-p",
            "ideal",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("Ideal"));
}

#[test]
fn run_json_is_parseable() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let v = zng_json::Value::parse(&text).expect("valid JSON RunResult");
    assert!(v["ipc"].as_f64().unwrap() > 0.0);
    assert_eq!(v["platform"], "Zng");
}

#[test]
fn traces_roundtrip_through_disk() {
    let path = std::env::temp_dir().join("zng_cli_traces_test.json");
    let out = cli()
        .args([
            "traces",
            "-w",
            "bfs1",
            "--out",
            path.to_str().unwrap(),
            "--warps",
            "4",
            "--ops",
            "20",
            "--footprint",
            "64",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bundle = zng_workloads::TraceBundle::load(&path).expect("load");
    assert_eq!(bundle.workload, "bfs1");
    assert_eq!(bundle.traces.len(), 4);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn qos_flags_add_overload_metrics() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw,back",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
            "--qos",
            "--queue-depth",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("qos rejected"), "{text}");
    assert!(text.contains("read p50/p95/p99"), "{text}");
    assert!(text.contains("app0 avg read lat"), "{text}");
}

#[test]
fn default_run_has_no_qos_rows() {
    let out = cli()
        .args([
            "run",
            "-p",
            "ideal",
            "-w",
            "betw",
            "--warps",
            "4",
            "--ops",
            "20",
            "--footprint",
            "64",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("qos"), "default output must be QoS-free");
}

#[test]
fn unknown_flags_name_the_flag_and_list_valid_ones() {
    let out = cli()
        .args(["run", "-p", "zng", "-w", "betw", "--bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "unknown flag must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("`--bogus`"), "names the flag: {err}");
    assert!(err.contains("for `run`"), "names the subcommand: {err}");
    assert!(err.contains("--queue-depth"), "lists valid flags: {err}");

    // `--platform` is a run flag, not a sweep flag.
    let out = cli()
        .args(["sweep", "-w", "betw", "--platform", "zng"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("`--platform`") && err.contains("for `sweep`"),
        "{err}"
    );
}

#[test]
fn bad_arguments_fail_with_usage() {
    for args in [
        vec!["run"], // missing everything
        vec!["run", "-p", "bogus", "-w", "betw"],
        vec!["run", "-p", "zng", "-w", "nope"],
        vec!["frobnicate"],
    ] {
        let out = cli().args(&args).output().expect("spawn");
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "no usage in stderr: {err}");
        assert_eq!(
            out.status.code(),
            Some(2),
            "usage errors exit 2: {args:?}\n{err}"
        );
    }
}

#[test]
fn simulation_errors_exit_one_without_usage() {
    // A 1-cycle watchdog budget trips immediately: a simulation error,
    // not a usage error, so exit 1 and no usage dump.
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
            "--watchdog",
            "1",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "simulation errors exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stalled"), "names the stall: {err}");
    assert!(
        !err.contains("usage:"),
        "no usage text for sim errors: {err}"
    );
}

#[test]
fn integrity_violation_exits_one() {
    // A silent-corruption shot with no redundancy to reconstruct from is
    // unrecoverable: the read fails loudly and the process exits 1.
    let out = cli()
        .args([
            "run",
            "-p",
            "zng-base",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
            "--integrity",
            "--sdc-at",
            "5",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "integrity violations exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("integrity"), "names the violation: {err}");
}

#[test]
fn integrity_flags_add_counters_and_heal_with_redundancy() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng-base",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
            "--integrity",
            "--sdc-at",
            "5",
            "--redundancy",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let v = zng_json::Value::parse(&text).expect("valid JSON RunResult");
    assert!(v["integrity_detected"].as_f64().unwrap() >= 1.0);
    assert!(v["integrity_reconstructed"].as_f64().unwrap() >= 1.0);
    assert_eq!(v["integrity_poisoned_lines"].as_f64().unwrap(), 0.0);
}

#[test]
fn health_flags_add_monitor_metrics() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng-base",
            "-w",
            "back",
            "--warps",
            "8",
            "--ops",
            "200",
            "--footprint",
            "128",
            "--health",
            "3",
            "--health-window",
            "16",
            "--suspect-threshold",
            "0.02",
            "--evacuate",
            "--degrading-die",
            "0:0:200000:14000000",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let v = zng_json::Value::parse(&text).expect("valid JSON RunResult");
    assert!(v["health_ticks"].as_f64().unwrap() > 0.0);
    assert!(v["health_suspects_flagged"].as_f64().unwrap() >= 1.0);
    assert!(v["health_pages_evacuated"].as_f64().unwrap() >= 1.0);
    assert!(
        text.contains("per_die_health"),
        "per-die rollups present:\n{text}"
    );
}

#[test]
fn health_usage_errors_exit_two_and_name_the_flag() {
    // Each health flag that wants a value must say so, name itself, and
    // exit with the usage code.
    for flag in ["--health", "--health-window", "--suspect-threshold"] {
        let out = cli()
            .args(["run", "-p", "zng", "-w", "betw", flag])
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{flag} without a value");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(flag), "names `{flag}`: {err}");
        assert!(err.contains("requires a value"), "{err}");
    }
    // A malformed die spec is a usage error too.
    let out = cli()
        .args(["run", "-p", "zng", "-w", "betw", "--degrading-die", "0:0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--degrading-die") && err.contains("ch:die:onset:death"),
        "{err}"
    );
    // And so is a non-numeric threshold.
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw",
            "--suspect-threshold",
            "hot",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("`hot` is not a number"), "{err}");
}

#[test]
fn default_run_has_no_health_rows() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw",
            "--warps",
            "4",
            "--ops",
            "20",
            "--footprint",
            "64",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        !text.contains("health") && !text.contains("quarantine") && !text.contains("evacuat"),
        "default output must be health-free:\n{text}"
    );
}

#[test]
fn default_run_has_no_integrity_rows() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw",
            "--warps",
            "4",
            "--ops",
            "20",
            "--footprint",
            "64",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        !text.contains("integrity") && !text.contains("poisoned"),
        "default output must be integrity-free:\n{text}"
    );
}
