//! End-to-end tests of the `zng-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zng-cli"))
}

#[test]
fn list_shows_platforms_and_workloads() {
    let out = cli().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "hetero",
        "hybridgpu",
        "optane",
        "zng",
        "ideal",
        "betw",
        "gram",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn run_prints_metrics_table() {
    let out = cli()
        .args([
            "run",
            "-p",
            "ideal",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("Ideal"));
}

#[test]
fn run_json_is_parseable() {
    let out = cli()
        .args([
            "run",
            "-p",
            "zng",
            "-w",
            "betw",
            "--warps",
            "8",
            "--ops",
            "40",
            "--footprint",
            "128",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let v = zng_json::Value::parse(&text).expect("valid JSON RunResult");
    assert!(v["ipc"].as_f64().unwrap() > 0.0);
    assert_eq!(v["platform"], "Zng");
}

#[test]
fn traces_roundtrip_through_disk() {
    let path = std::env::temp_dir().join("zng_cli_traces_test.json");
    let out = cli()
        .args([
            "traces",
            "-w",
            "bfs1",
            "--out",
            path.to_str().unwrap(),
            "--warps",
            "4",
            "--ops",
            "20",
            "--footprint",
            "64",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bundle = zng_workloads::TraceBundle::load(&path).expect("load");
    assert_eq!(bundle.workload, "bfs1");
    assert_eq!(bundle.traces.len(), 4);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_arguments_fail_with_usage() {
    for args in [
        vec!["run"], // missing everything
        vec!["run", "-p", "bogus", "-w", "betw"],
        vec!["run", "-p", "zng", "-w", "nope"],
        vec!["frobnicate"],
    ] {
        let out = cli().args(&args).output().expect("spawn");
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "no usage in stderr: {err}");
    }
}
