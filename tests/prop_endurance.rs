//! Endurance-management property tests (the PR's headline invariant).
//!
//! For an arbitrary workload, an arbitrary refresh cadence and policy,
//! any fault profile, RAIN on or off, and an arbitrary crash point, on
//! both FTLs:
//!
//! 1. **No acked write is ever lost to maintenance.** Background
//!    refresh, static-levelling migrations and end-of-life capacity
//!    steps never unmap a logical page or roll its media copy back past
//!    the newest version observed on media while powered.
//! 2. **No stale copy is ever served.** After every maintenance burst —
//!    and after an OOB-scan recovery cutting power mid-maintenance —
//!    each page resolves to its own data (OOB key matches) at a stamp
//!    no older than the recorded one; in-flight refresh programs lose
//!    stamp-ordered winner resolution to newer demand copies exactly
//!    like GC programs.
//! 3. **Determinism.** The same scenario replayed yields identical
//!    endurance counters and mappings.
//! 4. **Off is inert.** Explicitly installing the disabled policy is
//!    bit-identical — same per-op completion times, same mappings, same
//!    media wear — to never mentioning endurance at all.
//!
//! Static levelling's effectiveness (wear spread provably shrinking
//! under hot/cold skew) is asserted deterministically at the bottom.

use std::collections::HashMap;

use proptest::prelude::*;
use zng_flash::{FaultConfig, FlashDevice, FlashGeometry, RegisterTopology};
use zng_ftl::{PageMapFtl, RainConfig, RefreshPolicy, WriteMode, ZngFtl};
use zng_types::{Cycle, Error, Freq};

fn device(profile: u8, seed: u64) -> FlashDevice {
    let mut d = FlashDevice::zng_config(
        FlashGeometry::tiny(),
        Freq::default(),
        RegisterTopology::NiF,
    )
    .unwrap();
    let cfg = match profile {
        0 => FaultConfig::none(),
        1 => FaultConfig::nominal().with_seed(seed),
        _ => FaultConfig::end_of_life().with_seed(seed),
    };
    d.set_fault_config(&cfg);
    d
}

enum Ftl {
    Zng(ZngFtl),
    Map(PageMapFtl),
}

impl Ftl {
    fn new(d: &FlashDevice, mode: Option<WriteMode>, rain: bool, policy: RefreshPolicy) -> Ftl {
        let mut f = match mode {
            Some(m) => Ftl::Zng(ZngFtl::new(d, 2, m)),
            None => Ftl::Map(PageMapFtl::new(d)),
        };
        match &mut f {
            Ftl::Zng(z) => {
                if rain {
                    z.set_redundancy(d, Some(RainConfig::default()));
                }
                z.set_endurance(Some(policy));
            }
            Ftl::Map(m) => {
                if rain {
                    m.set_redundancy(d, Some(RainConfig::default()));
                }
                m.set_endurance(Some(policy));
            }
        }
        f
    }

    fn locate(&self, lpn: u64) -> Option<zng_types::FlashAddr> {
        match self {
            Ftl::Zng(f) => f.locate(lpn),
            Ftl::Map(f) => f.translate(lpn),
        }
    }

    fn write(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.write(now, d, lpn).map(|r| r.done),
            Ftl::Map(f) => f.write_page(now, d, lpn),
        }
    }

    fn read(&mut self, now: Cycle, d: &mut FlashDevice, lpn: u64) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.read(now, d, lpn, 128),
            Ftl::Map(f) => f.read_page(now, d, lpn, 128),
        }
    }

    fn refresh_step(&mut self, now: Cycle, d: &mut FlashDevice) -> zng_types::Result<Cycle> {
        match self {
            Ftl::Zng(f) => f.refresh_step(now, d),
            Ftl::Map(f) => f.refresh_step(now, d),
        }
    }

    fn recover(
        &mut self,
        now: Cycle,
        d: &mut FlashDevice,
    ) -> zng_types::Result<zng_ftl::RecoveryReport> {
        match self {
            Ftl::Zng(f) => f.recover(now, d),
            Ftl::Map(f) => f.recover(now, d),
        }
    }

    fn counters(&self) -> zng_ftl::EnduranceCounters {
        match self {
            Ftl::Zng(f) => f.endurance_counters().unwrap_or_default(),
            Ftl::Map(f) => f.endurance_counters().unwrap_or_default(),
        }
    }
}

/// The lower-bound durable version of each logical page at cut time
/// `t_cut`: the highest-stamped OOB entry whose program had completed,
/// or that was written by a non-demand copy (GC, refresh or levelling
/// migration — none of which tear).
fn durable_versions(d: &FlashDevice, t_cut: Cycle) -> HashMap<u64, u64> {
    let geo = *d.geometry();
    let mut durable: HashMap<u64, u64> = HashMap::new();
    for idx in 0..geo.total_blocks() as u64 {
        let block = geo.block_for_index(idx).unwrap();
        for page in 0..geo.pages_per_block as u32 {
            let addr = zng_types::FlashAddr { block, page };
            if let Some(m) = d.page_oob(addr) {
                // RAIN parity pages carry synthetic high-bit stripe keys,
                // not logical pages.
                if m.lpn >= (1 << 62) {
                    continue;
                }
                if !m.demand || m.programmed_at <= t_cut {
                    let e = durable.entry(m.lpn).or_insert(0);
                    *e = (*e).max(m.seq);
                }
            }
        }
    }
    durable
}

/// Asserts invariants 1+2 while powered: every tracked page still
/// resolves to its own data at a stamp no older than the recorded one,
/// and reads stay serviceable.
fn check_no_stale(
    f: &mut Ftl,
    d: &mut FlashDevice,
    t: Cycle,
    latest: &HashMap<u64, u64>,
) -> Result<Cycle, TestCaseError> {
    let mut t = t;
    for (&lpn, &seq) in latest {
        let addr = f.locate(lpn);
        prop_assert!(addr.is_some(), "maintenance unmapped acked lpn {lpn}");
        let addr = addr.unwrap();
        let stamp = d.page_stamp(addr);
        prop_assert!(stamp.is_some(), "acked lpn {lpn} maps to unstamped media");
        let (key, got) = stamp.unwrap();
        prop_assert_eq!(key, lpn, "lpn {} resolves to foreign data", lpn);
        prop_assert!(
            got >= seq,
            "maintenance rolled lpn {lpn} back to a stale copy ({got} < {seq})"
        );
        match f.read(t, d, lpn) {
            Ok(done) => t = done,
            Err(Error::UncorrectableRead { .. } | Error::CapacityDegraded { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("read of {lpn} failed: {e}"))),
        }
    }
    Ok(t)
}

/// Drives writes with interleaved read-disturb hammering and refresh
/// steps, checks the no-loss/no-stale invariants while powered, cuts
/// power at an arbitrary point (possibly mid-maintenance), recovers,
/// re-checks against the media's own durable versions, and replays the
/// whole scenario for determinism.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn check_endurance(
    profile: u8,
    seed: u64,
    writes: &[u64],
    refresh_every: usize,
    crash_at: usize,
    settle: bool,
    rain: bool,
    mode: Option<WriteMode>,
    policy: RefreshPolicy,
) -> Result<(), TestCaseError> {
    let run = |d: &mut FlashDevice,
               f: &mut Ftl,
               crash_at: usize|
     -> Result<(Cycle, HashMap<u64, u64>), TestCaseError> {
        let mut t = Cycle::ZERO;
        // The newest media stamp observed per lpn while powered; a lower
        // bound that maintenance must never roll back past.
        let mut latest: HashMap<u64, u64> = HashMap::new();
        for (i, &lpn) in writes[..crash_at.min(writes.len())].iter().enumerate() {
            match f.write(t, d, lpn) {
                Ok(done) => t = done,
                Err(Error::CapacityDegraded { .. }) => {}
                Err(Error::UncorrectableRead { .. }) => {}
                Err(Error::DeviceWornOut { .. }) => {
                    return Err(TestCaseError::fail(
                        "endurance mode must degrade the cliff away",
                    ))
                }
                Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
            }
            if let Some(addr) = f.locate(lpn) {
                if let Some((key, seq)) = d.page_stamp(addr) {
                    if key == lpn {
                        let e = latest.entry(lpn).or_insert(0);
                        *e = (*e).max(seq);
                    }
                }
            }
            // Re-reads accumulate read disturb on the mapped blocks.
            if i % 3 == 0 {
                match f.read(t, d, lpn) {
                    Ok(done) => t = done,
                    Err(Error::UncorrectableRead { .. } | Error::CapacityDegraded { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
                }
            }
            if i % refresh_every == 0 {
                t = f
                    .refresh_step(t, d)
                    .map_err(|e| TestCaseError::fail(format!("refresh step failed: {e}")))?;
            }
        }
        Ok((t, latest))
    };

    let mut d = device(profile, seed);
    d.set_endurance_tracking(Some(1));
    let mut f = Ftl::new(&d, mode, rain, policy);
    let (t, latest) = run(&mut d, &mut f, crash_at)?;

    // Invariants 1+2 while powered, after all maintenance bursts.
    let t = check_no_stale(&mut f, &mut d, t, &latest)?;

    // The cut — possibly right on the heels of a refresh/migration whose
    // background programs are still in flight when `settle` is false.
    let t_cut = if settle { t + Cycle(10_000_000) } else { t };
    d.power_loss(t_cut);
    let durable = durable_versions(&d, t_cut);
    let report = f
        .recover(t_cut, &mut d)
        .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;

    // Invariants 1+2 across the crash, judged from the media itself:
    // every durable version is mapped, its winner never a quarantined or
    // stale maintenance copy.
    let mut t_after = t_cut + report.scan_cycles + Cycle(1);
    for (&lpn, &seq) in &durable {
        let addr = f.locate(lpn);
        prop_assert!(
            addr.is_some(),
            "durable lpn {lpn} (seq {seq}) lost its mapping across a maintenance crash"
        );
        let addr = addr.unwrap();
        prop_assert!(!d.page_is_torn(addr), "lpn {lpn} mapped to a torn page");
        let stamp = d.page_stamp(addr);
        prop_assert!(stamp.is_some(), "lpn {lpn} mapped to unstamped media");
        let (key, got) = stamp.unwrap();
        prop_assert_eq!(key, lpn, "lpn {} resolves to foreign data", lpn);
        prop_assert!(
            got >= seq,
            "recovery rolled lpn {lpn} back past a durable version ({got} < {seq})"
        );
        match f.read(t_after, &mut d, lpn) {
            Ok(done) => t_after = done,
            Err(Error::UncorrectableRead { .. } | Error::CapacityDegraded { .. }) => {}
            Err(Error::TornPage { .. }) => {
                return Err(TestCaseError::fail(format!("torn page served for {lpn}")))
            }
            Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
        }
    }

    // State to check determinism against, captured before any further
    // maintenance mutates it.
    let counters_at_recovery = f.counters();
    let recovered: Vec<_> = writes.iter().map(|&l| (l, f.locate(l))).collect();

    // Invariant 3: the whole scenario replays deterministically — same
    // observed stamps, same endurance counters, same recovered mappings.
    let mut d2 = device(profile, seed);
    d2.set_endurance_tracking(Some(1));
    let mut f2 = Ftl::new(&d2, mode, rain, policy);
    let (_, latest2) = run(&mut d2, &mut f2, crash_at)?;
    prop_assert_eq!(&latest, &latest2, "replay observed different media stamps");
    d2.power_loss(t_cut);
    let report2 = f2
        .recover(t_cut, &mut d2)
        .map_err(|e| TestCaseError::fail(format!("replay recovery failed: {e}")))?;
    prop_assert_eq!(report.pages_scanned, report2.pages_scanned);
    prop_assert_eq!(report.torn_discarded, report2.torn_discarded);
    prop_assert_eq!(
        counters_at_recovery,
        f2.counters(),
        "endurance counters diverged on replay"
    );
    for &(lpn, addr) in &recovered {
        prop_assert_eq!(
            addr,
            f2.locate(lpn),
            "recovered mapping diverged for {}",
            lpn
        );
    }

    // Maintenance keeps running after recovery without disturbing the
    // recovered state's invariants.
    for _ in 0..4 {
        t_after = f
            .refresh_step(t_after, &mut d)
            .map_err(|e| TestCaseError::fail(format!("post-recovery refresh failed: {e}")))?;
    }
    let _ = t_after;
    for (&lpn, &seq) in &durable {
        let addr = f.locate(lpn);
        prop_assert!(addr.is_some(), "post-recovery maintenance unmapped {lpn}");
        let (key, got) = d.page_stamp(addr.unwrap()).unwrap_or((lpn, seq));
        prop_assert_eq!(key, lpn);
        prop_assert!(got >= seq);
    }
    Ok(())
}

/// Decodes three selector draws into a refresh policy, covering each
/// trigger disabled, aggressive and lax.
fn policy_of(disturb_sel: u8, retention_sel: u8, spread_sel: u8) -> RefreshPolicy {
    RefreshPolicy {
        disturb_threshold: [0, 4, 24][disturb_sel as usize % 3],
        retention_threshold: [0, 500_000, 5_000_000][retention_sel as usize % 3],
        wear_spread: [0.0, 1.2, 4.0][spread_sel as usize % 3],
        pacing: None,
    }
}

proptest! {
    /// ZnG FTL, direct writes: maintenance never loses or staleness-
    /// corrupts acked data, across crashes, on any fault profile.
    #[test]
    fn zng_direct_maintenance_is_safe(
        profile in 0u8..3,
        seed in 0u64..20,
        writes in prop::collection::vec(0u64..48, 1..70),
        refresh_every in 1usize..6,
        crash_at in 0usize..70,
        settle in any::<bool>(),
        rain in any::<bool>(),
        knobs in (0u8..3, 0u8..3, 0u8..3),
    ) {
        check_endurance(profile, seed, &writes, refresh_every, crash_at,
            settle, rain, Some(WriteMode::Direct),
            policy_of(knobs.0, knobs.1, knobs.2))?;
    }

    /// ZnG FTL, buffered (register-grouped) writes: same contract.
    #[test]
    fn zng_buffered_maintenance_is_safe(
        profile in 0u8..3,
        seed in 0u64..20,
        writes in prop::collection::vec(0u64..48, 1..70),
        refresh_every in 1usize..6,
        crash_at in 0usize..70,
        settle in any::<bool>(),
        rain in any::<bool>(),
        knobs in (0u8..3, 0u8..3, 0u8..3),
    ) {
        check_endurance(profile, seed, &writes, refresh_every, crash_at,
            settle, rain, Some(WriteMode::Buffered),
            policy_of(knobs.0, knobs.1, knobs.2))?;
    }

    /// Conventional page-map FTL: same contract.
    #[test]
    fn pagemap_maintenance_is_safe(
        profile in 0u8..3,
        seed in 0u64..20,
        writes in prop::collection::vec(0u64..256, 1..70),
        refresh_every in 1usize..6,
        crash_at in 0usize..70,
        settle in any::<bool>(),
        rain in any::<bool>(),
        knobs in (0u8..3, 0u8..3, 0u8..3),
    ) {
        check_endurance(profile, seed, &writes, refresh_every, crash_at,
            settle, rain, None, policy_of(knobs.0, knobs.1, knobs.2))?;
    }

    /// Endurance off is inert: explicitly installing the disabled state
    /// is bit-identical to never mentioning it — same per-op times, same
    /// mappings, same wear.
    #[test]
    fn endurance_off_is_inert(
        profile in 0u8..3,
        seed in 0u64..20,
        writes in prop::collection::vec(0u64..48, 1..70),
    ) {
        type RunTrace = (Vec<u64>, Vec<Option<zng_types::FlashAddr>>, u64);
        let run = |install: bool| -> Result<RunTrace, TestCaseError> {
            let mut d = device(profile, seed);
            let mut f = ZngFtl::new(&d, 2, WriteMode::Direct);
            if install {
                d.set_endurance_tracking(None);
                f.set_endurance(None);
            }
            let mut t = Cycle::ZERO;
            let mut times = Vec::new();
            for &lpn in &writes {
                match f.write(t, &mut d, lpn) {
                    Ok(r) => t = r.done,
                    Err(Error::DeviceWornOut { .. }) => break,
                    Err(Error::UncorrectableRead { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
                }
                times.push(t.raw());
                match f.read(t, &mut d, lpn, 128) {
                    Ok(done) => t = done,
                    Err(Error::UncorrectableRead { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("read failed: {e}"))),
                }
                times.push(t.raw());
            }
            let maps = writes.iter().map(|&l| f.locate(l)).collect();
            let e = d.endurance();
            Ok((times, maps, e.total_erases))
        };
        let a = run(false)?;
        let b = run(true)?;
        prop_assert_eq!(a.0, b.0, "disabled endurance changed op timing");
        prop_assert_eq!(a.1, b.1, "disabled endurance changed mappings");
        prop_assert_eq!(a.2, b.2, "disabled endurance changed media wear");
    }
}

/// Static wear levelling provably reduces the wear spread under hot/cold
/// skew: half the device holds cold data written once, the rest churns.
/// With levelling on, cold blocks are migrated into worn spares and
/// their low-wear cells rejoin the hot pool.
#[test]
fn static_levelling_reduces_wear_spread_under_skew() {
    let churn = |endurance: bool| -> (f64, u64) {
        let mut g = FlashGeometry::tiny();
        g.blocks_per_plane = 2;
        g.pages_per_block = 8;
        let mut d = FlashDevice::zng_config(g, Freq::default(), RegisterTopology::NiF).unwrap();
        let mut f = ZngFtl::new(&d, 1, WriteMode::Direct);
        if endurance {
            f.set_endurance(Some(RefreshPolicy {
                disturb_threshold: 0,
                retention_threshold: 0,
                wear_spread: 1.5,
                pacing: None,
            }));
        }
        let mut t = Cycle::ZERO;
        for vbn in 1..=16u64 {
            for p in 0..8u64 {
                t = f.write(t, &mut d, vbn * 8 + p).unwrap().done;
            }
            t = f.gc_group(t, &mut d, vbn).unwrap().done;
        }
        for i in 0..3_000u64 {
            t = f.write(t, &mut d, i % 8).unwrap().done;
            if endurance && i % 16 == 0 {
                t = f.refresh_step(t, &mut d).unwrap();
            }
        }
        // Every cold page still reads back after the migrations.
        for vbn in 1..=16u64 {
            for p in 0..8u64 {
                t = f.read(t, &mut d, vbn * 8 + p, 128).unwrap();
            }
        }
        (
            d.endurance().wear_spread(),
            f.endurance_counters().unwrap_or_default().level_migrations,
        )
    };
    let (spread_off, migs_off) = churn(false);
    let (spread_on, migs_on) = churn(true);
    assert_eq!(migs_off, 0);
    assert!(migs_on > 0, "the skew must trip the static leveler");
    assert!(
        spread_on < spread_off,
        "levelling must reduce the wear spread ({spread_on:.2} vs {spread_off:.2})"
    );
}

/// The same skew on the page-map FTL: its leveler relocates cold sealed
/// blocks directly.
#[test]
fn pagemap_levelling_reduces_wear_spread_under_skew() {
    let churn = |endurance: bool| -> (f64, u64) {
        let mut g = FlashGeometry::tiny();
        g.blocks_per_plane = 2;
        g.pages_per_block = 8;
        let mut d = FlashDevice::zng_config(g, Freq::default(), RegisterTopology::NiF).unwrap();
        let mut f = PageMapFtl::new(&d);
        if endurance {
            f.set_endurance(Some(RefreshPolicy {
                disturb_threshold: 0,
                retention_threshold: 0,
                wear_spread: 1.5,
                pacing: None,
            }));
        }
        let mut t = Cycle::ZERO;
        for lpn in 8..136u64 {
            t = f.write_page(t, &mut d, lpn).unwrap();
        }
        for i in 0..3_000u64 {
            t = f.write_page(t, &mut d, i % 8).unwrap();
            if endurance && i % 16 == 0 {
                t = f.refresh_step(t, &mut d).unwrap();
            }
        }
        for lpn in 8..136u64 {
            t = f.read_page(t, &mut d, lpn, 128).unwrap();
        }
        (
            d.endurance().wear_spread(),
            f.endurance_counters().unwrap_or_default().level_migrations,
        )
    };
    let (spread_off, _) = churn(false);
    let (spread_on, migs_on) = churn(true);
    assert!(migs_on > 0, "the skew must trip the static leveler");
    assert!(
        spread_on < spread_off,
        "levelling must reduce the wear spread ({spread_on:.2} vs {spread_off:.2})"
    );
}
